"""Tests of the parallel panel runtime (:mod:`repro.runtime`).

Covers the three guarantees the runtime advertises — deterministic
(bit-identical) reductions for any worker count, budget-aware admission
keeping tracked peak memory within ``limit_bytes``, and clean teardown
(``assert_all_freed`` after concurrent runs) — plus the scheduler
mechanics in isolation and the ``Z``-panel accounting regression.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.api import solve_coupled
from repro.core.config import SolverConfig
from repro.core.multi_solve import (
    assemble_multi_solve,
    make_multi_solve_context,
)
from repro.core.schur_tools import finalize_solution
from repro.memory.tracker import MemoryTracker
from repro.runtime import PanelTask, ParallelRuntime, resolve_n_workers
from repro.utils.errors import ConfigurationError, MemoryLimitExceeded

UNCOMPRESSED = SolverConfig(dense_backend="spido", n_c=64, n_b=2)
COMPRESSED = SolverConfig(
    dense_backend="hmat", n_c=64, n_s_block=192, n_b=2
)


# ---------------------------------------------------------------------------
# scheduler mechanics in isolation
# ---------------------------------------------------------------------------

class TestScheduler:
    def _noop_task(self, index, result=None, cost=0, sleep=0.0):
        def fn(timer, alloc):
            if sleep:
                time.sleep(sleep)
            return result if result is not None else index

        return PanelTask(index=index, fn=fn, cost_bytes=cost,
                         label=f"task {index}")

    @pytest.mark.parametrize("n_workers", [1, 4])
    def test_consumption_is_in_task_order(self, n_workers):
        tracker = MemoryTracker()
        seen = []
        # later tasks finish first (decreasing sleep): consumption order
        # must still be the submission order
        tasks = [
            self._noop_task(i, sleep=0.02 * (5 - i)) for i in range(5)
        ]
        with ParallelRuntime(tracker, n_workers=n_workers) as runtime:
            runtime.run(tasks, lambda task, result: seen.append(result))
        assert seen == list(range(5))
        tracker.assert_all_freed()

    @pytest.mark.parametrize("n_workers", [1, 4])
    def test_worker_slots_are_per_worker_and_drain(self, n_workers):
        # each worker lazily creates one slot object (the per-worker
        # front arena in multi-factorization) and keeps getting it back;
        # drain hands every created object to the caller exactly once
        tracker = MemoryTracker()
        created = []

        def factory():
            obj = object()
            created.append(obj)
            return obj

        def slot_task(index):
            def fn(timer, alloc):
                first = runtime.worker_slot("slot", factory)
                again = runtime.worker_slot("slot", factory)
                assert again is first
                return first

            return PanelTask(index=index, fn=fn, cost_bytes=0,
                             label=f"task {index}")

        used = []
        with ParallelRuntime(tracker, n_workers=n_workers) as runtime:
            runtime.run([slot_task(i) for i in range(8)],
                        lambda task, result: used.append(result))
            drained = runtime.drain_worker_slots("slot")
            assert runtime.drain_worker_slots("slot") == []
        assert 1 <= len(created) <= max(n_workers, 1)
        assert sorted(map(id, drained)) == sorted(map(id, created))
        assert set(map(id, used)) <= set(map(id, created))
        tracker.assert_all_freed()

    def test_budget_bounds_concurrent_tasks(self):
        # each task holds 40 B; the 100 B limit admits at most two at once
        tracker = MemoryTracker(limit_bytes=100)
        lock = threading.Lock()
        state = {"running": 0, "max_running": 0}

        def make(i):
            def fn(timer, alloc):
                with lock:
                    state["running"] += 1
                    state["max_running"] = max(
                        state["max_running"], state["running"]
                    )
                time.sleep(0.02)
                with lock:
                    state["running"] -= 1
                return i

            return PanelTask(index=i, fn=fn, cost_bytes=40)

        with ParallelRuntime(tracker, n_workers=4) as runtime:
            runtime.run([make(i) for i in range(8)], lambda t, r: None)
        assert state["max_running"] <= 2
        assert tracker.peak <= 100
        tracker.assert_all_freed()
        assert tracker.admission_wait_seconds > 0.0

    def test_headroom_reservation_gates_admission(self):
        # 40 B charge + 40 B headroom each: only one task fits under 100 B
        tracker = MemoryTracker(limit_bytes=100)
        lock = threading.Lock()
        state = {"running": 0, "max_running": 0}

        def make(i):
            def fn(timer, alloc):
                with lock:
                    state["running"] += 1
                    state["max_running"] = max(
                        state["max_running"], state["running"]
                    )
                # the nested charge the headroom was reserved for
                with tracker.borrow(40, label="nested workspace"):
                    time.sleep(0.01)
                with lock:
                    state["running"] -= 1
                return i

            return PanelTask(index=i, fn=fn, cost_bytes=40,
                             headroom_bytes=40)

        with ParallelRuntime(tracker, n_workers=4) as runtime:
            runtime.run([make(i) for i in range(6)], lambda t, r: None)
        assert state["max_running"] == 1
        assert tracker.peak <= 100
        tracker.assert_all_freed()

    def test_oversized_task_raises_like_serial(self):
        tracker = MemoryTracker(limit_bytes=100)
        with ParallelRuntime(tracker, n_workers=4) as runtime:
            with pytest.raises(MemoryLimitExceeded):
                runtime.run(
                    [self._noop_task(0, cost=150)], lambda t, r: None
                )
        tracker.assert_all_freed()

    @pytest.mark.parametrize("n_workers", [1, 4])
    def test_task_error_propagates_and_frees_budget(self, n_workers):
        tracker = MemoryTracker(limit_bytes=1000)

        def boom(timer, alloc):
            raise RuntimeError("panel exploded")

        tasks = [self._noop_task(i, cost=100) for i in range(6)]
        tasks[2] = PanelTask(index=2, fn=boom, cost_bytes=100)
        with ParallelRuntime(tracker, n_workers=n_workers) as runtime:
            with pytest.raises(RuntimeError, match="panel exploded"):
                runtime.run(tasks, lambda t, r: None)
        tracker.assert_all_freed()

    def test_failed_admission_still_reports_its_wait(self):
        """Regression: ``_admit`` used to record ``scheduler_wait`` only on
        the success path, so a task that blocked and then raised (too large
        once the earlier holders drained) silently dropped its blocked time
        from the worker phase report."""
        tracker = MemoryTracker(limit_bytes=100)
        # task 0 holds 60 B long enough for task 1 to block on admission;
        # once it frees, task 1 (150 B) is alone and must raise — with the
        # accumulated wait still visible in the report
        tasks = [
            self._noop_task(0, cost=60, sleep=0.05),
            self._noop_task(1, cost=150),
        ]
        runtime = ParallelRuntime(tracker, n_workers=2)
        try:
            with pytest.raises(MemoryLimitExceeded):
                runtime.run(tasks, lambda t, r: None)
            report = runtime.report()
            waited = sum(
                phases.get("scheduler_wait", 0.0)
                for phases in report.worker_phases.values()
            )
            assert waited >= 0.04
        finally:
            runtime.close()
        tracker.assert_all_freed()

    def test_task_can_resize_its_allocation(self):
        tracker = MemoryTracker()

        def fn(timer, alloc):
            assert alloc.nbytes == 100
            alloc.resize(30)
            return "z"

        with ParallelRuntime(tracker, n_workers=1) as runtime:
            seen = []
            runtime.run(
                [PanelTask(index=0, fn=fn, cost_bytes=100)],
                lambda t, r: seen.append((r, tracker.in_use)),
            )
        # while being consumed, only the shrunk result share was charged
        assert seen == [("z", 30)]
        tracker.assert_all_freed()

    def test_worker_phase_times_and_wait_are_reported(self):
        tracker = MemoryTracker()

        def fn(timer, alloc):
            with timer.phase("sparse_solve"):
                time.sleep(0.01)
            return None

        runtime = ParallelRuntime(tracker, n_workers=2)
        runtime.run([PanelTask(index=i, fn=fn) for i in range(4)])
        report = runtime.report()
        assert report.n_workers == 2
        assert report.n_tasks == 4
        total_solve = sum(
            phases.get("sparse_solve", 0.0)
            for phases in report.worker_phases.values()
        )
        assert total_solve >= 0.04
        from repro.utils.timer import PhaseTimer

        main = PhaseTimer()
        runtime.finalize(main)
        assert main.get("sparse_solve") == pytest.approx(total_solve)

    def test_closed_runtime_rejects_runs(self):
        runtime = ParallelRuntime(MemoryTracker(), n_workers=2)
        runtime.close()
        with pytest.raises(RuntimeError):
            runtime.run([])


class TestResolveNWorkers:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_WORKERS", "7")
        assert resolve_n_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_WORKERS", "5")
        assert resolve_n_workers(None) == 5

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_N_WORKERS", raising=False)
        assert resolve_n_workers(None) == 1

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_WORKERS", "many")
        with pytest.raises(ValueError):
            resolve_n_workers(None)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SolverConfig(n_workers=0)
        assert SolverConfig(n_workers=4).effective_n_workers == 4
        assert SolverConfig().effective_n_workers >= 1


# ---------------------------------------------------------------------------
# end-to-end: the coupling algorithms on the runtime
# ---------------------------------------------------------------------------

class TestBitIdenticalSolutions:
    @pytest.mark.parametrize("config", [UNCOMPRESSED, COMPRESSED],
                             ids=["spido", "hmat"])
    def test_multi_solve(self, pipe_small, config):
        serial = solve_coupled(pipe_small, "multi_solve",
                               config.with_(n_workers=1))
        parallel = solve_coupled(pipe_small, "multi_solve",
                                 config.with_(n_workers=4))
        assert np.array_equal(serial.x, parallel.x)
        assert parallel.stats.n_workers == 4
        assert parallel.stats.params["n_workers"] == 4

    @pytest.mark.parametrize("config", [UNCOMPRESSED, COMPRESSED],
                             ids=["spido", "hmat"])
    def test_multi_factorization(self, pipe_small, config):
        serial = solve_coupled(pipe_small, "multi_factorization",
                               config.with_(n_workers=1))
        parallel = solve_coupled(pipe_small, "multi_factorization",
                                 config.with_(n_workers=4))
        assert np.array_equal(serial.x, parallel.x)

    def test_stats_counters_match_serial(self, pipe_small):
        serial = solve_coupled(pipe_small, "multi_solve",
                               UNCOMPRESSED.with_(n_workers=1))
        parallel = solve_coupled(pipe_small, "multi_solve",
                                 UNCOMPRESSED.with_(n_workers=4))
        assert (parallel.stats.n_sparse_solves
                == serial.stats.n_sparse_solves)
        assert (parallel.stats.n_sparse_factorizations
                == serial.stats.n_sparse_factorizations)
        assert parallel.stats.worker_phases  # breakdown was recorded


class TestMemoryBoundedExecution:
    def _run_tracked(self, problem, algorithm, config):
        if algorithm == "multi_solve":
            ctx = make_multi_solve_context(problem, config)
            pieces = assemble_multi_solve(ctx)
        else:
            from repro.core.multi_factorization import (
                assemble_multi_factorization,
                make_multi_factorization_context,
            )

            ctx = make_multi_factorization_context(problem, config)
            pieces = assemble_multi_factorization(ctx)
        solution = finalize_solution(ctx, *pieces)
        return ctx, solution

    def test_untracked_z_panel_is_now_accounted(self, pipe_small):
        """Regression: the SpMM result ``Z_i`` (n_bem × n_c) must be part
        of the solve-panel accounting, not only the solve panel ``Y_i``
        (n_fem × n_c).  The seed's accounting fails this check."""
        config = UNCOMPRESSED.with_(n_workers=1)
        ctx, _ = self._run_tracked(pipe_small, "multi_solve", config)
        width = min(config.n_c, pipe_small.n_bem)
        itemsize = np.dtype(pipe_small.dtype).itemsize
        y_and_z = (pipe_small.n_fem + pipe_small.n_bem) * width * itemsize
        assert ctx.tracker.category_peak("solve_panel") >= y_and_z

    def test_peak_within_limit_under_four_workers(self, pipe_small):
        """A limit barely above the serial peak admits nowhere near four
        concurrent panels: admission control must block (not raise) and
        keep the tracked peak within the limit."""
        config = UNCOMPRESSED.with_(n_workers=1)
        ctx_serial, serial = self._run_tracked(
            pipe_small, "multi_solve", config
        )
        limit = int(ctx_serial.tracker.peak * 1.02)
        ctx, parallel = self._run_tracked(
            pipe_small, "multi_solve",
            config.with_(n_workers=4, memory_limit=limit),
        )
        assert ctx.tracker.peak <= limit
        assert np.array_equal(serial.x, parallel.x)
        ctx.tracker.assert_all_freed()

    @pytest.mark.parametrize("algorithm",
                             ["multi_solve", "multi_factorization"])
    @pytest.mark.parametrize("config", [UNCOMPRESSED, COMPRESSED],
                             ids=["spido", "hmat"])
    def test_all_freed_after_concurrent_run(self, pipe_small, algorithm,
                                            config):
        ctx, _ = self._run_tracked(
            pipe_small, algorithm, config.with_(n_workers=4)
        )
        ctx.tracker.assert_all_freed()

    def test_scheduler_wait_surfaces_in_stats(self, pipe_small):
        config = UNCOMPRESSED.with_(n_workers=1)
        ctx_serial, _ = self._run_tracked(pipe_small, "multi_solve", config)
        limit = int(ctx_serial.tracker.peak * 1.02)
        _, sol = self._run_tracked(
            pipe_small, "multi_solve",
            config.with_(n_workers=4, memory_limit=limit),
        )
        # the tight limit forced workers to block on admission
        assert sol.stats.scheduler_wait_seconds > 0.0
        assert "scheduler_wait" in sol.stats.phases


class TestReporting:
    def test_render_worker_breakdown(self, pipe_small):
        from repro.runner.reporting import render_worker_breakdown

        parallel = solve_coupled(pipe_small, "multi_solve",
                                 UNCOMPRESSED.with_(n_workers=2))
        text = render_worker_breakdown(parallel.stats)
        assert "worker-0" in text
        assert "scheduler_wait" in text
        serial = solve_coupled(pipe_small, "multi_solve",
                               UNCOMPRESSED.with_(n_workers=1))
        assert "serial" in render_worker_breakdown(serial.stats)
