"""Tests for the numeric multifrontal factorization, Schur API and solves."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.fembem.fem import assemble_fem_matrix
from repro.fembem.mesh import StructuredGrid
from repro.memory import MemoryTracker
from repro.sparse import BLRConfig, SparseSolver
from repro.utils.errors import ConfigurationError, SingularMatrixError


@pytest.fixture(scope="module")
def spd_problem():
    grid = StructuredGrid(9, 7, 6)
    a = assemble_fem_matrix(grid, mode="real_spd")
    return grid, a.tocsr()


@pytest.fixture(scope="module")
def unsym_problem():
    grid = StructuredGrid(8, 6, 5)
    a = assemble_fem_matrix(grid, mode="complex_nonsym")
    return grid, a.tocsr()


class TestFactorizeSolve:
    def test_ldlt_solve_matches_scipy(self, spd_problem, rng):
        grid, a = spd_problem
        f = SparseSolver().factorize(a, coords=grid.points(),
                                     symmetric_values=True)
        b = rng.standard_normal(a.shape[0])
        x = f.solve(b)
        np.testing.assert_allclose(x, spla.spsolve(a.tocsc(), b), rtol=1e-8)
        f.free()

    def test_lu_solve_complex_nonsymmetric(self, unsym_problem, rng):
        grid, a = unsym_problem
        f = SparseSolver().factorize(a, coords=grid.points(),
                                     symmetric_values=False)
        b = rng.standard_normal(a.shape[0]) + 1j * rng.standard_normal(a.shape[0])
        x = f.solve(b)
        res = np.linalg.norm(a @ x - b) / np.linalg.norm(b)
        assert res < 1e-10
        f.free()

    def test_multiple_rhs(self, spd_problem, rng):
        grid, a = spd_problem
        f = SparseSolver().factorize(a, coords=grid.points(),
                                     symmetric_values=True)
        b = rng.standard_normal((a.shape[0], 7))
        x = f.solve(b)
        assert np.abs(a @ x - b).max() < 1e-9
        f.free()

    def test_sparse_rhs_exploitation_matches_dense_path(self, spd_problem):
        grid, a = spd_problem
        n = a.shape[0]
        f = SparseSolver().factorize(a, coords=grid.points(),
                                     symmetric_values=True)
        rhs = sp.random(n, 3, density=0.003, format="csr", random_state=5)
        x_sparse = f.solve(rhs, exploit_sparsity=True)
        x_dense = f.solve(np.asarray(rhs.todense()), exploit_sparsity=False)
        np.testing.assert_allclose(x_sparse, x_dense, atol=1e-12)
        f.free()

    def test_zero_rhs_gives_zero(self, spd_problem):
        grid, a = spd_problem
        f = SparseSolver().factorize(a, coords=grid.points(),
                                     symmetric_values=True)
        x = f.solve(np.zeros(a.shape[0]))
        np.testing.assert_array_equal(x, 0.0)
        f.free()

    def test_graph_ordering_backend(self, spd_problem, rng):
        _, a = spd_problem
        f = SparseSolver(ordering="graph").factorize(a, symmetric_values=True)
        b = rng.standard_normal(a.shape[0])
        np.testing.assert_allclose(f.solve(b), spla.spsolve(a.tocsc(), b),
                                   rtol=1e-8)
        f.free()

    def test_geometric_without_coords_rejected(self, spd_problem):
        _, a = spd_problem
        with pytest.raises(ConfigurationError):
            SparseSolver(ordering="geometric").factorize(a)

    def test_rhs_size_mismatch_rejected(self, spd_problem):
        grid, a = spd_problem
        f = SparseSolver().factorize(a, coords=grid.points(),
                                     symmetric_values=True)
        with pytest.raises(ConfigurationError):
            f.solve(np.zeros(a.shape[0] + 1))
        f.free()

    def test_solve_after_free_raises(self, spd_problem):
        grid, a = spd_problem
        f = SparseSolver().factorize(a, coords=grid.points(),
                                     symmetric_values=True)
        f.free()
        with pytest.raises(RuntimeError):
            f.solve(np.zeros(a.shape[0]))

    def test_singular_matrix_raises(self):
        grid = StructuredGrid(4, 4, 4)
        n = grid.n_points
        a = sp.csr_matrix((n, n))
        a.setdiag(0.0)
        with pytest.raises(SingularMatrixError):
            SparseSolver().factorize(a + sp.csr_matrix(
                (np.zeros(1), ([0], [1])), shape=(n, n)),
                coords=grid.points(), symmetric_values=True)


class TestSchurAPI:
    def _schur_setup(self, grid, a, k, seed, unsym=False):
        n = a.shape[0]
        c = sp.random(k, n, density=0.02, format="csr", random_state=seed,
                      dtype=np.float64)
        b = (sp.random(k, n, density=0.02, format="csr",
                       random_state=seed + 1).T
             if unsym else c.T)
        w = sp.bmat([[a, b], [c, None]], format="csr")
        return w, b, c

    def test_symmetric_schur_matches_direct_computation(self, spd_problem):
        grid, a = spd_problem
        n, k = a.shape[0], 25
        w, b, c = self._schur_setup(grid, a, k, seed=7)
        f = SparseSolver().factorize_schur(
            w, np.arange(n, n + k), coords_interior=grid.points(),
            symmetric_values=True,
        )
        ref = -(c @ spla.spsolve(a.tocsc(), b.toarray()))
        np.testing.assert_allclose(f.schur, ref, atol=1e-10)
        f.free()

    def test_unsymmetric_schur(self, spd_problem):
        grid, a = spd_problem
        n, k = a.shape[0], 20
        w, b, c = self._schur_setup(grid, a, k, seed=11, unsym=True)
        f = SparseSolver().factorize_schur(
            w, np.arange(n, n + k), coords_interior=grid.points(),
            symmetric_values=False,
        )
        ref = -(c @ spla.spsolve(a.tocsc(), b.toarray()))
        np.testing.assert_allclose(f.schur, ref, atol=1e-10)
        f.free()

    def test_schur_includes_a22_entries(self, spd_problem):
        grid, a = spd_problem
        n, k = a.shape[0], 12
        w, b, c = self._schur_setup(grid, a, k, seed=13)
        w = w.tolil()
        for i in range(k):
            w[n + i, n + i] = 10.0 + i
        w = w.tocsr()
        f = SparseSolver().factorize_schur(
            w, np.arange(n, n + k), coords_interior=grid.points(),
            symmetric_values=True,
        )
        ref = np.diag(10.0 + np.arange(k)) - (
            c @ spla.spsolve(a.tocsc(), b.toarray())
        )
        np.testing.assert_allclose(f.schur, ref, atol=1e-10)
        f.free()

    def test_schur_is_dense_ndarray(self, spd_problem):
        """Faithful to the paper's API constraint: S comes back dense."""
        grid, a = spd_problem
        n, k = a.shape[0], 10
        w, _, _ = self._schur_setup(grid, a, k, seed=17)
        f = SparseSolver().factorize_schur(
            w, np.arange(n, n + k), coords_interior=grid.points(),
            symmetric_values=True,
        )
        assert isinstance(f.schur, np.ndarray)
        assert f.schur.shape == (k, k)
        f.free()

    def test_interior_solve_with_schur_present(self, spd_problem, rng):
        grid, a = spd_problem
        n, k = a.shape[0], 15
        w, _, _ = self._schur_setup(grid, a, k, seed=19)
        f = SparseSolver().factorize_schur(
            w, np.arange(n, n + k), coords_interior=grid.points(),
            symmetric_values=True,
        )
        b = rng.standard_normal(n)
        x = f.solve(b)
        np.testing.assert_allclose(a @ x, b, atol=1e-9)
        f.free()

    def test_take_schur_transfers_ownership(self, spd_problem):
        grid, a = spd_problem
        n, k = a.shape[0], 8
        w, _, _ = self._schur_setup(grid, a, k, seed=23)
        t = MemoryTracker()
        f = SparseSolver(tracker=t).factorize_schur(
            w, np.arange(n, n + k), coords_interior=grid.points(),
            symmetric_values=True,
        )
        s, alloc = f.take_schur()
        f.free()
        assert t.in_use == alloc.nbytes  # only the transferred Schur remains
        alloc.free()
        t.assert_all_freed()

    def test_take_schur_without_schur_rejected(self, spd_problem):
        grid, a = spd_problem
        f = SparseSolver().factorize(a, coords=grid.points(),
                                     symmetric_values=True)
        with pytest.raises(ConfigurationError):
            f.take_schur()
        f.free()


class TestBLR:
    def test_blr_preserves_solve_accuracy(self, spd_problem, rng):
        grid, a = spd_problem
        f = SparseSolver(blr=BLRConfig(tol=1e-10, min_panel=16)).factorize(
            a, coords=grid.points(), symmetric_values=True
        )
        b = rng.standard_normal(a.shape[0])
        res = np.linalg.norm(a @ f.solve(b) - b) / np.linalg.norm(b)
        assert res < 1e-7
        f.free()

    def test_loose_blr_reduces_factor_bytes(self, spd_problem):
        grid, a = spd_problem
        dense_f = SparseSolver(blr=None).factorize(
            a, coords=grid.points(), symmetric_values=True
        )
        blr_f = SparseSolver(
            blr=BLRConfig(tol=1e-1, min_panel=8, max_rank_fraction=0.9)
        ).factorize(a, coords=grid.points(), symmetric_values=True)
        assert blr_f.factor_bytes < dense_f.factor_bytes
        dense_f.free()
        blr_f.free()

    def test_blr_error_scales_with_tolerance(self, spd_problem, rng):
        grid, a = spd_problem
        b = rng.standard_normal(a.shape[0])
        errs = []
        for tol in (1e-2, 1e-8):
            f = SparseSolver(
                blr=BLRConfig(tol=tol, min_panel=8, max_rank_fraction=1.0)
            ).factorize(a, coords=grid.points(), symmetric_values=True)
            errs.append(
                np.linalg.norm(a @ f.solve(b) - b) / np.linalg.norm(b)
            )
            f.free()
        assert errs[1] < errs[0]


class TestMemoryAccounting:
    def test_no_leaks_after_free(self, spd_problem, rng):
        grid, a = spd_problem
        t = MemoryTracker()
        f = SparseSolver(tracker=t).factorize(
            a, coords=grid.points(), symmetric_values=True
        )
        f.solve(rng.standard_normal(a.shape[0]))
        assert t.in_use > 0
        f.free()
        t.assert_all_freed()

    def test_peak_includes_front_workspace(self, spd_problem):
        grid, a = spd_problem
        t = MemoryTracker()
        f = SparseSolver(tracker=t).factorize(
            a, coords=grid.points(), symmetric_values=True
        )
        assert t.peak > f.factor_bytes  # transient fronts exceeded factors
        # the reusable arena replaces per-front workspace allocations:
        # one charge, sized for the largest front, released with the call
        assert t.category_peak("front_arena") > 0
        assert t.category_peak("update_stack") > 0
        assert t.categories.get("front_arena", 0) == 0
        f.free()

    def test_unsymmetric_mode_doubles_factor_storage(self, spd_problem):
        """The paper's duplicated-storage effect: LU stores two panels."""
        grid, a = spd_problem
        f_ldlt = SparseSolver().factorize(a, coords=grid.points(),
                                          symmetric_values=True)
        f_lu = SparseSolver().factorize(a, coords=grid.points(),
                                        symmetric_values=False)
        assert f_lu.factor_bytes > 1.6 * f_ldlt.factor_bytes
        f_ldlt.free()
        f_lu.free()

    def test_memory_limit_aborts_factorization(self, spd_problem):
        from repro.utils.errors import MemoryLimitExceeded
        grid, a = spd_problem
        t = MemoryTracker(limit_bytes=50_000)
        with pytest.raises(MemoryLimitExceeded):
            SparseSolver(tracker=t).factorize(
                a, coords=grid.points(), symmetric_values=True
            )


class TestSymmetryProbe:
    def test_auto_detects_symmetric(self, spd_problem, rng):
        grid, a = spd_problem
        f = SparseSolver().factorize(a, coords=grid.points())
        assert f.mode == "ldlt"
        f.free()

    def test_auto_detects_unsymmetric(self, unsym_problem):
        grid, a = unsym_problem
        f = SparseSolver().factorize(a, coords=grid.points())
        assert f.mode == "lu"
        f.free()
