"""Integration tests for the asyncio solver server and client.

Each test runs a real :class:`SolverServer` on a unix socket inside
``asyncio.run`` and talks to it through :class:`ServingClient` — the
same path production traffic takes, including pickling the coupled
problem across the socket.  Server shutdown asserts the factor-cache
tracker balance is zero, so every test doubles as a leak check (under
the module watchdog from ``conftest.py``).
"""

import asyncio
import os
import subprocess
import sys
import tempfile
import time

import numpy as np
import pytest

from repro.core import SolverConfig, solve_coupled
from repro.serving import (
    ConnectionLostError,
    ServingClient,
    SolverServer,
    ServingError,
)
from repro.serving.protocol import error_response, raise_remote_error
from repro.utils.errors import FactorizationFreed

CONFIG_KW = dict(dense_backend="hmat", n_c=64)


def short_socket_path():
    # unix socket paths are length-limited (~104 bytes); pytest tmp_path
    # can exceed that, so mint a short one under the system tempdir
    return os.path.join(tempfile.mkdtemp(prefix="repro-srv-"), "s.sock")


def run_with_server(config, body, cache_enabled=True):
    """Run ``body(server, client)`` against a live server; clean stop."""

    async def main():
        server = SolverServer(config, socket_path=short_socket_path(),
                              cache_enabled=cache_enabled)
        await server.start()
        client = await ServingClient.connect(server.socket_path)
        try:
            return await body(server, client)
        finally:
            await client.close()
            await server.stop()  # asserts tracker balance is zero

    return asyncio.run(main())


class TestProtocolBasics:
    def test_ping_and_stats(self, pipe_small):
        async def body(server, client):
            assert await client.ping()
            stats = await client.stats()
            assert stats["connections"] == 1
            assert stats["cache"]["entries"] == 0

        run_with_server(SolverConfig(**CONFIG_KW), body)

    def test_unknown_key_is_a_clean_error(self, pipe_small):
        async def body(server, client):
            with pytest.raises(ServingError, match="no live factorization"):
                await client.solve("deadbeef", pipe_small.b_v,
                                   pipe_small.b_s)
            # the connection survives the error
            assert await client.ping()

        run_with_server(SolverConfig(**CONFIG_KW), body)

    def test_error_marshalling_round_trip(self):
        response = error_response(7, FactorizationFreed("evicted"))
        with pytest.raises(FactorizationFreed, match="evicted"):
            raise_remote_error(response)
        with pytest.raises(ServingError, match="KeyError"):
            raise_remote_error(error_response(8, KeyError("nope")))

    def test_shutdown_op_stops_the_server(self, pipe_small):
        async def main():
            server = SolverServer(SolverConfig(**CONFIG_KW),
                                  socket_path=short_socket_path())
            await server.start()
            runner = asyncio.ensure_future(server.serve_until_shutdown())
            client = await ServingClient.connect(server.socket_path)
            await client.shutdown_server()
            await client.close()
            await asyncio.wait_for(runner, timeout=30)
            assert not os.path.exists(server.socket_path)

        asyncio.run(main())


class TestFactorizeAndSolve:
    def test_unbatched_solve_is_byte_identical(self, pipe_small):
        """Batching off: the served solution equals solve_coupled exactly."""
        config = SolverConfig(serve_batching=False, **CONFIG_KW)
        reference = solve_coupled(pipe_small, "multi_solve", config)

        async def body(server, client):
            result = await client.factorize(pipe_small)
            assert not result.hit
            x_v, x_s = await client.solve(result.key, pipe_small.b_v,
                                          pipe_small.b_s)
            np.testing.assert_array_equal(x_v, reference.x_v)
            np.testing.assert_array_equal(x_s, reference.x_s)

        run_with_server(config, body)

    def test_lone_request_is_byte_identical_even_with_batching(
            self, pipe_small):
        """A panel of one passes arrays through unmodified."""
        config = SolverConfig(serve_batching=True,
                              serve_batch_linger_ms=1.0, **CONFIG_KW)
        reference = solve_coupled(pipe_small, "multi_solve", config)

        async def body(server, client):
            result = await client.factorize(pipe_small)
            x_v, x_s = await client.solve(result.key, pipe_small.b_v,
                                          pipe_small.b_s)
            np.testing.assert_array_equal(x_v, reference.x_v)
            np.testing.assert_array_equal(x_s, reference.x_s)
            stats = await client.stats()
            assert stats["solve"]["batch_request_hist"] == {"1": 1}

        run_with_server(config, body)

    def test_repeat_factorize_hits_the_cache(self, pipe_small):
        async def body(server, client):
            first = await client.factorize(pipe_small)
            second = await client.factorize(pipe_small)
            assert not first.hit and second.hit
            assert first.key == second.key
            stats = await client.stats()
            assert stats["cache"]["hits"] == 1
            assert stats["cache"]["misses"] == 1
            assert stats["cache"]["entries"] == 1

        run_with_server(SolverConfig(**CONFIG_KW), body)

    def test_concurrent_solves_coalesce_and_agree(self, pipe_small):
        """Overlapping requests batch into one panel; results match the
        direct solve to solver tolerance and scatter deterministically."""
        config = SolverConfig(serve_batching=True,
                              serve_batch_linger_ms=50.0, **CONFIG_KW)
        scales = [1.0, -2.0, 0.5, 3.0, -1.5, 0.25]

        async def body(server, client):
            result = await client.factorize(pipe_small)
            outs = await asyncio.gather(*[
                client.solve(result.key, s * pipe_small.b_v,
                             s * pipe_small.b_s)
                for s in scales
            ])
            reference = solve_coupled(pipe_small, "multi_solve", config)
            for s, (x_v, x_s) in zip(scales, outs):
                np.testing.assert_allclose(x_v, s * reference.x_v,
                                           rtol=1e-8, atol=1e-10)
                np.testing.assert_allclose(x_s, s * reference.x_s,
                                           rtol=1e-8, atol=1e-10)
            stats = await client.stats()
            assert stats["solve"]["requests"] == len(scales)
            # the long linger coalesced everything into few panels
            assert stats["solve"]["batches"] < len(scales)
            assert max(int(k) for k in
                       stats["solve"]["batch_request_hist"]) > 1
            assert stats["solve"]["queue_wait"]["count"] == len(scales)

        run_with_server(config, body)

    def test_matrix_load_cases_scatter_correctly(self, pipe_small):
        """Mixed vector and multi-column requests in one batch."""
        config = SolverConfig(serve_batching=True,
                              serve_batch_linger_ms=50.0, **CONFIG_KW)

        async def body(server, client):
            result = await client.factorize(pipe_small)
            panel_v = np.stack([pipe_small.b_v, 2 * pipe_small.b_v], axis=1)
            panel_s = np.stack([pipe_small.b_s, 2 * pipe_small.b_s], axis=1)
            (mv, ms), (vv, vs) = await asyncio.gather(
                client.solve(result.key, panel_v, panel_s),
                client.solve(result.key, -1.0 * pipe_small.b_v,
                             -1.0 * pipe_small.b_s),
            )
            assert mv.shape == (pipe_small.n_fem, 2)
            assert vv.shape == (pipe_small.n_fem,)
            np.testing.assert_allclose(mv[:, 1], 2 * mv[:, 0],
                                       rtol=1e-8, atol=1e-10)
            np.testing.assert_allclose(vv, -1.0 * mv[:, 0],
                                       rtol=1e-8, atol=1e-10)
            np.testing.assert_allclose(vs, -1.0 * ms[:, 0],
                                       rtol=1e-8, atol=1e-10)

        run_with_server(config, body)


class TestCacheLifecycleOverProtocol:
    def test_eviction_under_budget_and_zero_balance(self, pipe_small):
        """A miss under a full budget evicts the LRU entry; the server
        shutdown (run_with_server teardown) asserts a zero balance."""
        import pickle

        # a second system of identical size but different values: same
        # entry footprint, different fingerprint
        other = pickle.loads(pickle.dumps(pipe_small))
        other.a_vv.data *= 1.125

        async def body(server, client):
            first = await client.factorize(pipe_small)
            # budget sized after the fact: room for one entry only
            server.cache.tracker.limit_bytes = int(
                1.5 * first.peak_bytes
            )
            second = await client.factorize(other)
            assert not second.hit
            assert second.key != first.key
            assert second.evictions == 1
            stats = await client.stats()
            assert stats["cache"]["entries"] == 1
            assert stats["cache"]["evictions"] == 1
            # the evicted key is gone; the server says so cleanly
            with pytest.raises(ServingError, match="no live factorization"):
                await client.solve(first.key, pipe_small.b_v,
                                   pipe_small.b_s)
            x_v, x_s = await client.solve(second.key, other.b_v,
                                          other.b_s)
            # `other` has no manufactured exact solution (its values were
            # perturbed), so judge by the residual of its own system
            assert other.residual_norm(x_v, x_s) < 1e-4

        run_with_server(SolverConfig(**CONFIG_KW), body)

    def test_cache_disabled_mode_counts_misses(self, pipe_small):
        async def body(server, client):
            first = await client.factorize(pipe_small)
            second = await client.factorize(pipe_small)
            assert not first.hit and not second.hit
            assert first.key != second.key
            stats = await client.stats()
            assert stats["cache"]["enabled"] is False
            assert stats["cache"]["misses"] == 2

        run_with_server(
            SolverConfig(serve_cache_entries=4, **CONFIG_KW),
            body, cache_enabled=False,
        )


class TestReconnect:
    def test_client_survives_a_server_restart(self, pipe_small):
        """Kill the server, bring a new one up on the same socket: the
        client reconnects with backoff and the request succeeds."""

        async def main():
            socket_path = short_socket_path()
            first = SolverServer(SolverConfig(**CONFIG_KW),
                                 socket_path=socket_path)
            await first.start()
            client = await ServingClient.connect(socket_path,
                                                 backoff_base=0.01)
            try:
                assert await client.ping()
                await first.stop()  # connection drops under the client
                second = SolverServer(SolverConfig(**CONFIG_KW),
                                      socket_path=socket_path)
                await second.start()
                try:
                    # transparently reconnects to the restarted server
                    assert await client.ping()
                    x_v, x_s = await client.solve_system(pipe_small)
                    assert pipe_small.relative_error(x_v, x_s) < 1e-3
                finally:
                    await second.stop()
            finally:
                await client.close()

        asyncio.run(main())

    def test_retries_exhausted_raises(self, pipe_small):
        """No server comes back: bounded retries, then the failure
        propagates instead of looping forever."""

        async def main():
            server = SolverServer(SolverConfig(**CONFIG_KW),
                                  socket_path=short_socket_path())
            await server.start()
            client = await ServingClient.connect(server.socket_path,
                                                 retries=2,
                                                 backoff_base=0.01)
            try:
                assert await client.ping()
                await server.stop()
                with pytest.raises((ConnectionLostError, OSError)):
                    await client.ping()
            finally:
                await client.close()

        asyncio.run(main())

    def test_retries_zero_fails_fast(self, pipe_small):
        async def main():
            server = SolverServer(SolverConfig(**CONFIG_KW),
                                  socket_path=short_socket_path())
            await server.start()
            client = await ServingClient.connect(server.socket_path,
                                                 retries=0)
            try:
                assert await client.ping()
                await server.stop()
                with pytest.raises(ConnectionLostError):
                    await client.ping()
            finally:
                await client.close()

        asyncio.run(main())


class TestCli:
    def test_runner_serve_smoke(self, pipe_small):
        """`python -m repro.runner serve` accepts a connection end-to-end."""
        socket_path = short_socket_path()
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.runner", "serve",
             "--socket", socket_path, "--linger-ms", "1.0"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            deadline = time.monotonic() + 60
            while not os.path.exists(socket_path):
                assert proc.poll() is None, proc.stdout.read().decode()
                assert time.monotonic() < deadline, "server never bound"
                time.sleep(0.05)

            async def drive():
                client = await ServingClient.connect(socket_path)
                assert await client.ping()
                x_v, x_s = await client.solve_system(pipe_small)
                assert pipe_small.relative_error(x_v, x_s) < 1e-3
                await client.shutdown_server()
                await client.close()

            asyncio.run(drive())
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:  # pragma: no cover - failure path
                proc.kill()
                proc.wait()
