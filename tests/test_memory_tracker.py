"""Unit and property tests for the logical memory tracker."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import MemoryTracker, fmt_bytes
from repro.utils.errors import MemoryLimitExceeded


class TestBasicAccounting:
    def test_allocate_and_free(self):
        t = MemoryTracker()
        a = t.allocate(1000)
        assert t.in_use == 1000
        a.free()
        assert t.in_use == 0
        assert t.peak == 1000

    def test_peak_tracks_high_water_mark(self):
        t = MemoryTracker()
        a = t.allocate(100)
        b = t.allocate(300)
        a.free()
        c = t.allocate(50)
        assert t.peak == 400
        assert t.in_use == 350
        b.free()
        c.free()

    def test_double_free_is_noop(self):
        t = MemoryTracker()
        a = t.allocate(10)
        a.free()
        a.free()
        assert t.in_use == 0

    def test_track_array_uses_nbytes(self):
        t = MemoryTracker()
        arr = np.zeros((10, 10))
        a = t.track_array(arr)
        assert a.nbytes == arr.nbytes == 800
        a.free()

    def test_n_allocations_counter(self):
        t = MemoryTracker()
        for _ in range(5):
            t.allocate(1).free()
        assert t.n_allocations == 5

    def test_zero_byte_allocation_allowed(self):
        t = MemoryTracker()
        a = t.allocate(0)
        assert t.in_use == 0
        a.free()

    def test_negative_allocation_rejected(self):
        t = MemoryTracker()
        with pytest.raises(ValueError):
            t.allocate(-1)


class TestCategories:
    def test_category_breakdown(self):
        t = MemoryTracker()
        a = t.allocate(100, category="factors")
        b = t.allocate(50, category="workspace")
        assert t.category_in_use("factors") == 100
        assert t.category_in_use("workspace") == 50
        assert t.categories == {"factors": 100, "workspace": 50}
        a.free()
        assert t.category_in_use("factors") == 0
        assert t.category_peak("factors") == 100
        b.free()

    def test_peak_categories_are_per_category(self):
        t = MemoryTracker()
        a = t.allocate(100, category="x")
        a.free()
        b = t.allocate(60, category="y")
        # per-category peaks are independent of global interleaving
        assert t.category_peak("x") == 100
        assert t.category_peak("y") == 60
        b.free()


class TestLimit:
    def test_limit_enforced(self):
        t = MemoryTracker(limit_bytes=100)
        a = t.allocate(80)
        with pytest.raises(MemoryLimitExceeded) as exc:
            t.allocate(30, label="too big")
        assert exc.value.requested == 30
        assert exc.value.in_use == 80
        assert exc.value.limit == 100
        assert "too big" in str(exc.value)
        a.free()

    def test_failed_allocation_does_not_leak(self):
        t = MemoryTracker(limit_bytes=100)
        t.allocate(80)
        with pytest.raises(MemoryLimitExceeded):
            t.allocate(30)
        assert t.in_use == 80

    def test_exact_fit_allowed(self):
        t = MemoryTracker(limit_bytes=100)
        a = t.allocate(100)
        a.free()

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            MemoryTracker(limit_bytes=0)


class TestResizeAndBorrow:
    def test_resize_up_and_down(self):
        t = MemoryTracker()
        a = t.allocate(100, category="s")
        a.resize(250)
        assert t.in_use == 250
        a.resize(50)
        assert t.in_use == 50
        assert t.peak == 250
        a.free()
        assert t.in_use == 0

    def test_resize_respects_limit(self):
        t = MemoryTracker(limit_bytes=200)
        a = t.allocate(100)
        with pytest.raises(MemoryLimitExceeded):
            a.resize(300)
        a.free()

    def test_resize_freed_allocation_raises(self):
        t = MemoryTracker()
        a = t.allocate(10)
        a.free()
        with pytest.raises(RuntimeError):
            a.resize(20)

    def test_borrow_frees_on_exit(self):
        t = MemoryTracker()
        with t.borrow(500):
            assert t.in_use == 500
        assert t.in_use == 0

    def test_borrow_frees_on_exception(self):
        t = MemoryTracker()
        with pytest.raises(RuntimeError):
            with t.borrow(500):
                raise RuntimeError("boom")
        assert t.in_use == 0


class TestReporting:
    def test_assert_all_freed_raises_on_leak(self):
        t = MemoryTracker(name="leaky")
        t.allocate(10, category="oops")
        with pytest.raises(AssertionError, match="oops"):
            t.assert_all_freed()

    def test_report_mentions_categories(self):
        t = MemoryTracker(name="r")
        a = t.allocate(2048, category="factors")
        text = t.report()
        assert "factors" in text
        assert "2.00 KiB" in text
        a.free()

    def test_reset_peak(self):
        t = MemoryTracker()
        a = t.allocate(100)
        a.free()
        t.reset_peak()
        assert t.peak == 0


class TestFmtBytes:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (2048, "2.00 KiB"),
            (5 * 1024**2, "5.00 MiB"),
            (3 * 1024**3, "3.00 GiB"),
            (2 * 1024**4, "2.00 TiB"),
        ],
    )
    def test_formatting(self, value, expected):
        assert fmt_bytes(value) == expected


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 10_000), st.booleans()), min_size=1,
        max_size=40,
    )
)
def test_property_in_use_equals_sum_of_live(ops):
    """Random alloc/free interleavings keep in_use == sum of live sizes."""
    t = MemoryTracker()
    live = []
    for size, do_free in ops:
        live.append(t.allocate(size))
        if do_free and live:
            idx = size % len(live)
            live[idx].free()
            live = [a for a in live if a.live]
    assert t.in_use == sum(a.nbytes for a in live)
    for a in live:
        a.free()
    t.assert_all_freed()


class TestAcquire:
    """Budget-aware admission control (the parallel runtime's allocator)."""

    def test_acquire_behaves_like_allocate_without_contention(self):
        t = MemoryTracker(limit_bytes=100)
        a = t.acquire(60, category="panel")
        assert t.in_use == 60
        assert t.category_in_use("panel") == 60
        a.free()
        t.assert_all_freed()

    def test_first_acquisition_raises_like_serial(self):
        # with no other acquisition outstanding there is nothing to wait
        # for: an oversized request must raise, exactly like allocate()
        t = MemoryTracker(limit_bytes=100)
        with pytest.raises(MemoryLimitExceeded):
            t.acquire(150)
        t.assert_all_freed()

    def test_acquire_blocks_until_budget_frees(self):
        import threading

        t = MemoryTracker(limit_bytes=100)
        first = t.acquire(80)
        admitted = threading.Event()

        def second():
            b = t.acquire(80)
            admitted.set()
            b.free()

        worker = threading.Thread(target=second)
        worker.start()
        assert not admitted.wait(0.05)  # blocked while `first` holds 80
        first.free()
        assert admitted.wait(2.0)
        worker.join()
        t.assert_all_freed()
        assert t.peak <= 100
        assert t.admission_wait_seconds > 0.0

    def test_nonblocking_acquire_raises_under_contention(self):
        t = MemoryTracker(limit_bytes=100)
        first = t.acquire(80)
        with pytest.raises(MemoryLimitExceeded):
            t.acquire(80, block=False)
        first.free()
        t.assert_all_freed()

    def test_acquire_timeout_raises(self):
        t = MemoryTracker(limit_bytes=100)
        first = t.acquire(80)
        with pytest.raises(MemoryLimitExceeded, match="timed out"):
            t.acquire(80, timeout=0.01)
        first.free()
        t.assert_all_freed()

    def test_headroom_gates_admission_without_being_charged(self):
        t = MemoryTracker(limit_bytes=100)
        a = t.acquire(30, headroom=50)
        assert t.in_use == 30  # the reservation itself is never charged
        # 30 used + 50 reserved + 30 requested > 100: contended
        with pytest.raises(MemoryLimitExceeded):
            t.acquire(30, block=False)
        # ...but the holder's own nested charge fits inside the reservation
        with t.borrow(50):
            assert t.in_use == 80
        a.free()
        t.assert_all_freed()

    def test_negative_headroom_rejected(self):
        with pytest.raises(ValueError):
            MemoryTracker().acquire(10, headroom=-1)

    def test_racing_frees_account_exactly_once(self):
        """Hammer the free() double-free guard: N threads racing ``free()``
        on the same allocations must uncharge each exactly once.

        Regression for the non-atomic check-then-act on ``Allocation._live``
        — a double uncharge either trips the underflow guard or corrupts
        ``in_use``, both of which this asserts against.
        """
        import threading

        t = MemoryTracker()
        base = t.allocate(1_000, category="base")
        errors = []
        for _round in range(25):
            allocs = [t.allocate(100, category="panel") for _ in range(8)]
            barrier = threading.Barrier(4)

            def racer():
                try:
                    barrier.wait()
                    for a in allocs:  # noqa: B023 - rebound each round
                        a.free()
                except BaseException as exc:  # pragma: no cover - failure
                    errors.append(exc)

            threads = [threading.Thread(target=racer) for _ in range(4)]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
            assert not errors, errors
            # exact accounting: every 100 B panel uncharged exactly once
            assert t.in_use == 1_000
            assert t.category_in_use("panel") == 0
        base.free()
        t.assert_all_freed()

    def test_timeout_is_a_deadline_not_per_wait(self):
        """``acquire(timeout=T)`` must give up after ~T seconds *total*.

        Regression: the wait loop used to re-arm the full timeout on every
        wakeup, so a tracker with frequent small frees (each notifying the
        condition) could block an admission far beyond its timeout — here a
        churn thread notifies every few milliseconds and would postpone the
        timeout indefinitely under the old behaviour.
        """
        import threading
        import time

        t = MemoryTracker(limit_bytes=100)
        first = t.acquire(90)
        stop = threading.Event()

        def churn():
            # frees budget (and notifies waiters) but never enough
            while not stop.is_set():
                t.allocate(5).free()
                time.sleep(0.005)

        th = threading.Thread(target=churn)
        th.start()
        try:
            t0 = time.perf_counter()
            with pytest.raises(MemoryLimitExceeded, match="timed out"):
                t.acquire(80, timeout=0.2)
            elapsed = time.perf_counter() - t0
        finally:
            stop.set()
            th.join()
        assert elapsed < 2.0  # ~0.2 s intended; generous CI margin
        first.free()
        t.assert_all_freed()

    def test_concurrent_acquire_free_stays_consistent(self):
        import threading

        t = MemoryTracker(limit_bytes=1000)
        errors = []

        def worker(seed):
            try:
                for i in range(50):
                    a = t.acquire(1 + (seed * 31 + i) % 200)
                    a.resize(a.nbytes // 2)
                    a.free()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors
        assert t.peak <= 1000
        t.assert_all_freed()


class TestUnderflowGuard:
    def test_release_more_than_charged_raises(self):
        t = MemoryTracker()
        t.allocate(100, category="a")
        with pytest.raises(AssertionError, match="underflow"):
            t._uncharge(150, "a")

    def test_category_mismatch_raises(self):
        # a charge recorded under one category must not be released
        # from another, even when the total would stay non-negative
        t = MemoryTracker()
        t.allocate(100, category="a")
        with pytest.raises(AssertionError, match="underflow"):
            t._uncharge(50, "b")

    def test_failed_release_leaves_state_untouched(self):
        t = MemoryTracker()
        a = t.allocate(100, category="a")
        with pytest.raises(AssertionError):
            t._uncharge(150, "a")
        assert t.in_use == 100
        assert t.category_in_use("a") == 100
        a.free()
        t.assert_all_freed()
