"""Unit and property tests for the logical memory tracker."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import Allocation, MemoryTracker, fmt_bytes
from repro.utils.errors import MemoryLimitExceeded


class TestBasicAccounting:
    def test_allocate_and_free(self):
        t = MemoryTracker()
        a = t.allocate(1000)
        assert t.in_use == 1000
        a.free()
        assert t.in_use == 0
        assert t.peak == 1000

    def test_peak_tracks_high_water_mark(self):
        t = MemoryTracker()
        a = t.allocate(100)
        b = t.allocate(300)
        a.free()
        c = t.allocate(50)
        assert t.peak == 400
        assert t.in_use == 350
        b.free()
        c.free()

    def test_double_free_is_noop(self):
        t = MemoryTracker()
        a = t.allocate(10)
        a.free()
        a.free()
        assert t.in_use == 0

    def test_track_array_uses_nbytes(self):
        t = MemoryTracker()
        arr = np.zeros((10, 10))
        a = t.track_array(arr)
        assert a.nbytes == arr.nbytes == 800
        a.free()

    def test_n_allocations_counter(self):
        t = MemoryTracker()
        for _ in range(5):
            t.allocate(1).free()
        assert t.n_allocations == 5

    def test_zero_byte_allocation_allowed(self):
        t = MemoryTracker()
        a = t.allocate(0)
        assert t.in_use == 0
        a.free()

    def test_negative_allocation_rejected(self):
        t = MemoryTracker()
        with pytest.raises(ValueError):
            t.allocate(-1)


class TestCategories:
    def test_category_breakdown(self):
        t = MemoryTracker()
        a = t.allocate(100, category="factors")
        b = t.allocate(50, category="workspace")
        assert t.category_in_use("factors") == 100
        assert t.category_in_use("workspace") == 50
        assert t.categories == {"factors": 100, "workspace": 50}
        a.free()
        assert t.category_in_use("factors") == 0
        assert t.category_peak("factors") == 100
        b.free()

    def test_peak_categories_are_per_category(self):
        t = MemoryTracker()
        a = t.allocate(100, category="x")
        a.free()
        b = t.allocate(60, category="y")
        # per-category peaks are independent of global interleaving
        assert t.category_peak("x") == 100
        assert t.category_peak("y") == 60
        b.free()


class TestLimit:
    def test_limit_enforced(self):
        t = MemoryTracker(limit_bytes=100)
        a = t.allocate(80)
        with pytest.raises(MemoryLimitExceeded) as exc:
            t.allocate(30, label="too big")
        assert exc.value.requested == 30
        assert exc.value.in_use == 80
        assert exc.value.limit == 100
        assert "too big" in str(exc.value)
        a.free()

    def test_failed_allocation_does_not_leak(self):
        t = MemoryTracker(limit_bytes=100)
        t.allocate(80)
        with pytest.raises(MemoryLimitExceeded):
            t.allocate(30)
        assert t.in_use == 80

    def test_exact_fit_allowed(self):
        t = MemoryTracker(limit_bytes=100)
        a = t.allocate(100)
        a.free()

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            MemoryTracker(limit_bytes=0)


class TestResizeAndBorrow:
    def test_resize_up_and_down(self):
        t = MemoryTracker()
        a = t.allocate(100, category="s")
        a.resize(250)
        assert t.in_use == 250
        a.resize(50)
        assert t.in_use == 50
        assert t.peak == 250
        a.free()
        assert t.in_use == 0

    def test_resize_respects_limit(self):
        t = MemoryTracker(limit_bytes=200)
        a = t.allocate(100)
        with pytest.raises(MemoryLimitExceeded):
            a.resize(300)
        a.free()

    def test_resize_freed_allocation_raises(self):
        t = MemoryTracker()
        a = t.allocate(10)
        a.free()
        with pytest.raises(RuntimeError):
            a.resize(20)

    def test_borrow_frees_on_exit(self):
        t = MemoryTracker()
        with t.borrow(500):
            assert t.in_use == 500
        assert t.in_use == 0

    def test_borrow_frees_on_exception(self):
        t = MemoryTracker()
        with pytest.raises(RuntimeError):
            with t.borrow(500):
                raise RuntimeError("boom")
        assert t.in_use == 0


class TestReporting:
    def test_assert_all_freed_raises_on_leak(self):
        t = MemoryTracker(name="leaky")
        t.allocate(10, category="oops")
        with pytest.raises(AssertionError, match="oops"):
            t.assert_all_freed()

    def test_report_mentions_categories(self):
        t = MemoryTracker(name="r")
        a = t.allocate(2048, category="factors")
        text = t.report()
        assert "factors" in text
        assert "2.00 KiB" in text
        a.free()

    def test_reset_peak(self):
        t = MemoryTracker()
        a = t.allocate(100)
        a.free()
        t.reset_peak()
        assert t.peak == 0


class TestFmtBytes:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (2048, "2.00 KiB"),
            (5 * 1024**2, "5.00 MiB"),
            (3 * 1024**3, "3.00 GiB"),
            (2 * 1024**4, "2.00 TiB"),
        ],
    )
    def test_formatting(self, value, expected):
        assert fmt_bytes(value) == expected


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 10_000), st.booleans()), min_size=1,
        max_size=40,
    )
)
def test_property_in_use_equals_sum_of_live(ops):
    """Random alloc/free interleavings keep in_use == sum of live sizes."""
    t = MemoryTracker()
    live = []
    for size, do_free in ops:
        live.append(t.allocate(size))
        if do_free and live:
            idx = size % len(live)
            live[idx].free()
            live = [a for a in live if a.live]
    assert t.in_use == sum(a.nbytes for a in live)
    for a in live:
        a.free()
    t.assert_all_freed()
