"""Tests for the hierarchical LU factorization of HODLR matrices."""

import numpy as np
import pytest

from repro.fembem.bem import make_surface_operator
from repro.fembem.mesh import box_surface_points
from repro.hmatrix.cluster import build_cluster_tree
from repro.hmatrix.factorization import HLUFactorization
from repro.hmatrix.hmatrix import build_hodlr, hodlr_from_dense
from repro.utils.errors import SingularMatrixError


@pytest.fixture(scope="module")
def setup():
    pts = box_surface_points((8.0, 2.0, 2.0), 320, seed=8)
    tree = build_cluster_tree(pts, leaf_size=40)
    return pts, tree


class TestSolve:
    def test_real_kernel_system(self, setup, rng):
        pts, tree = setup
        op = make_surface_operator(pts, kind="laplace")
        dense = op.to_dense()
        hm = build_hodlr(op, tree, tol=1e-8)
        f = HLUFactorization(hm)
        b = rng.standard_normal(len(pts))
        x = f.solve(b)
        assert np.linalg.norm(dense @ x - b) / np.linalg.norm(b) < 1e-6

    def test_complex_helmholtz_system(self, setup, rng):
        pts, tree = setup
        op = make_surface_operator(pts, kind="helmholtz", wavenumber=1.5)
        dense = op.to_dense()
        hm = build_hodlr(op, tree, tol=1e-8)
        f = HLUFactorization(hm)
        b = rng.standard_normal(len(pts)) + 1j * rng.standard_normal(len(pts))
        x = f.solve(b)
        assert np.linalg.norm(dense @ x - b) / np.linalg.norm(b) < 1e-6

    def test_multiple_rhs(self, setup, rng):
        pts, tree = setup
        op = make_surface_operator(pts)
        dense = op.to_dense()
        f = HLUFactorization(build_hodlr(op, tree, tol=1e-9))
        b = rng.standard_normal((len(pts), 5))
        x = f.solve(b)
        assert np.abs(dense @ x - b).max() < 1e-6

    def test_accuracy_tracks_tolerance(self, setup, rng):
        pts, tree = setup
        op = make_surface_operator(pts)
        dense = op.to_dense()
        b = rng.standard_normal(len(pts))
        errs = []
        for tol in (1e-3, 1e-6, 1e-9):
            f = HLUFactorization(build_hodlr(op, tree, tol=tol))
            x = f.solve(b)
            errs.append(np.linalg.norm(dense @ x - b) / np.linalg.norm(b))
        assert errs[2] < errs[1] < errs[0]

    def test_nonsymmetric_dense_matrix(self, setup, rng):
        """H-LU must not assume symmetry (multi-fact Schur is unsym)."""
        pts, tree = setup
        n = len(pts)
        a = rng.standard_normal((n, n)) * 0.05 + np.diag(
            2.0 + rng.uniform(0, 1, n)
        )
        hm = hodlr_from_dense(a, tree, tol=1e-10)
        f = HLUFactorization(hm)
        b = rng.standard_normal(n)
        x = f.solve(b)
        assert np.linalg.norm(a @ x - b) / np.linalg.norm(b) < 1e-6

    def test_input_hmatrix_unchanged(self, setup, rng):
        pts, tree = setup
        op = make_surface_operator(pts)
        hm = build_hodlr(op, tree, tol=1e-8)
        before = hm.to_dense()
        HLUFactorization(hm)
        np.testing.assert_array_equal(hm.to_dense(), before)

    def test_identity_matrix(self, setup):
        pts, tree = setup
        n = len(pts)
        hm = hodlr_from_dense(np.eye(n), tree, tol=1e-10)
        f = HLUFactorization(hm)
        b = np.arange(n, dtype=float)
        np.testing.assert_allclose(f.solve(b), b, atol=1e-10)

    def test_singular_leaf_raises(self, setup):
        pts, tree = setup
        n = len(pts)
        hm = hodlr_from_dense(np.zeros((n, n)), tree, tol=1e-10)
        with pytest.raises(SingularMatrixError):
            HLUFactorization(hm)


class TestAccounting:
    def test_factor_bytes_positive_and_bounded(self, setup):
        pts, tree = setup
        op = make_surface_operator(pts)
        hm = build_hodlr(op, tree, tol=1e-4)
        f = HLUFactorization(hm)
        n = len(pts)
        assert 0 < f.nbytes() < 2 * n * n * 8

    def test_max_rank_reported(self, setup):
        pts, tree = setup
        op = make_surface_operator(pts)
        f = HLUFactorization(build_hodlr(op, tree, tol=1e-6))
        assert f.max_rank() >= 1
