"""Deferred-recompression accumulators and the split compressed AXPY.

Covers the :class:`repro.hmatrix.rk.RkAccumulator` lifecycle, the
pre-compress/commit split of ``HMatrix.axpy_dense``, the incremental byte
accounting of the compressed Schur container, and the end-to-end
guarantees: accuracy within the compression tolerance for randomized
panel schedules, byte-identical assembled ``S`` across worker counts,
and a ≥ 2× reduction in off-diagonal recompressions versus the
immediate-fold path.

This module runs under the lock-order watchdog and tracker-balance
recorder (see ``conftest.py``): any ABBA-prone lock acquisition or
unbalanced tracker in the new parallel pre-compress path fails the test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SolverConfig
from repro.core.multi_factorization import solve_multi_factorization
from repro.core.multi_solve import (
    assemble_multi_solve,
    make_multi_solve_context,
    solve_multi_solve,
)
from repro.core.schur_tools import finalize_solution
from repro.hmatrix.cluster import build_cluster_tree
from repro.hmatrix.hmatrix import hodlr_from_dense, hodlr_zeros
from repro.hmatrix.rk import (
    AXPY_ACCUMULATE_ENV,
    RkAccumulator,
    RkMatrix,
    resolve_axpy_accumulate,
    svd_truncate,
)
from repro.memory.tracker import MemoryTracker
from repro.utils.errors import ConfigurationError

TOL = 1e-9


def _random_rk(rng, m, n, r, dtype=np.float64):
    return RkMatrix(
        rng.standard_normal((m, r)).astype(dtype),
        rng.standard_normal((n, r)).astype(dtype),
    )


# -- RkAccumulator unit tests --------------------------------------------------
class TestRkAccumulator:
    def test_append_tracks_pending_rank_and_bytes(self, rng):
        base = RkMatrix.zeros(40, 30)
        acc = RkAccumulator(base)
        total = 0
        for r in (2, 3, 1):
            total += acc.append(_random_rk(rng, 40, 30, r))
        assert acc.pending_rank == 6
        assert acc.pending_nbytes == total > 0
        assert acc.n_appends == 3
        assert acc.n_flushes == 0

    def test_rank_zero_append_is_free(self, rng):
        acc = RkAccumulator(RkMatrix.zeros(10, 10))
        assert acc.append(RkMatrix.zeros(10, 10)) == 0
        assert acc.pending_rank == 0

    def test_shape_mismatch_rejected(self, rng):
        acc = RkAccumulator(RkMatrix.zeros(10, 10))
        with pytest.raises(ConfigurationError, match="shape mismatch"):
            acc.append(_random_rk(rng, 10, 11, 2))

    def test_max_rank_validation(self):
        with pytest.raises(ConfigurationError, match="max_rank"):
            RkAccumulator(RkMatrix.zeros(4, 4), max_rank=0)

    def test_flush_equals_eager_sum(self, rng):
        base = _random_rk(rng, 50, 40, 4)
        updates = [_random_rk(rng, 50, 40, 2) for _ in range(5)]
        dense = base.to_dense() + sum(u.to_dense() for u in updates)

        acc = RkAccumulator(base)
        for u in updates:
            acc.append(u)
        out = acc.flush(TOL)
        assert out is acc.base
        assert acc.pending_rank == 0
        assert acc.n_flushes == 1
        err = np.linalg.norm(out.to_dense() - dense)
        assert err <= 100 * TOL * np.linalg.norm(dense)

    def test_flush_without_pending_is_noop(self, rng):
        base = _random_rk(rng, 20, 20, 3)
        acc = RkAccumulator(base)
        assert acc.flush(TOL) is base
        assert acc.n_flushes == 0

    def test_needs_flush_gates_on_pending_rank_only(self, rng):
        # a converged base rank near the budget must not thrash
        base = _random_rk(rng, 64, 64, 30)
        acc = RkAccumulator(base, max_rank=8)
        assert not acc.needs_flush
        acc.append(_random_rk(rng, 64, 64, 8))
        assert not acc.needs_flush
        acc.append(_random_rk(rng, 64, 64, 1))
        assert acc.needs_flush

    def test_pending_dense_and_matvec(self, rng):
        acc = RkAccumulator(RkMatrix.zeros(30, 20))
        ups = [_random_rk(rng, 30, 20, 2) for _ in range(3)]
        for u in ups:
            acc.append(u)
        dense = sum(u.to_dense() for u in ups)
        np.testing.assert_allclose(acc.pending_dense(), dense)
        x = rng.standard_normal((20, 4))
        np.testing.assert_allclose(acc.pending_matvec(x), dense @ x)


# -- gesvd fallback -----------------------------------------------------------
class TestSvdFallback:
    def test_gesdd_failure_falls_back_to_gesvd(self, rng, monkeypatch):
        a = rng.standard_normal((30, 20))

        def failing_svd(*args, **kwargs):
            raise np.linalg.LinAlgError("SVD did not converge")

        monkeypatch.setattr(np.linalg, "svd", failing_svd)
        u, v = svd_truncate(a, 1e-12)
        err = np.linalg.norm(u @ v.T - a) / np.linalg.norm(a)
        assert err < 1e-10

    def test_fallback_respects_truncation(self, rng, monkeypatch):
        u0, _ = np.linalg.qr(rng.standard_normal((40, 40)))
        v0, _ = np.linalg.qr(rng.standard_normal((40, 40)))
        s = np.zeros(40)
        s[:5] = [10.0, 5.0, 2.0, 1.0, 0.5]
        a = (u0 * s) @ v0.T

        def failing_svd(*args, **kwargs):
            raise np.linalg.LinAlgError("SVD did not converge")

        monkeypatch.setattr(np.linalg, "svd", failing_svd)
        u, v = svd_truncate(a, 1e-3)
        assert u.shape[1] == 5


# -- HMatrix pre-compress / commit / flush ------------------------------------
class TestSplitAxpy:
    @pytest.fixture()
    def tree_and_target(self, rng):
        n = 160
        pts = rng.random((n, 3))
        tree = build_cluster_tree(pts, leaf_size=24)
        return n, tree

    def test_randomized_panels_stay_within_tolerance(self, tree_and_target,
                                                     rng):
        """Property-style: random panel orders/sizes, accumulation on."""
        n, tree = tree_and_target
        tol = 1e-8
        for trial in range(3):
            hm = hodlr_zeros(tree, tol, np.float64)
            target = np.zeros((n, n))
            for _ in range(8):
                rows = np.sort(rng.choice(n, size=rng.integers(20, n),
                                          replace=False))
                cols = np.sort(rng.choice(n, size=rng.integers(10, 80),
                                          replace=False))
                alpha = rng.choice([-1.0, 1.0])
                panel = rng.standard_normal((len(rows), len(cols)))
                target[np.ix_(rows, cols)] += alpha * panel
                hm.axpy_dense(alpha, panel, rows, cols, accumulate=True,
                              max_accumulated_rank=32)
            hm.flush_accumulators()
            err = np.linalg.norm(hm.to_dense() - target)
            assert err <= 100 * tol * max(1.0, np.linalg.norm(target))
            assert hm.pending_accumulator_nbytes() == 0

    def test_reads_include_pending_state(self, tree_and_target, rng):
        n, tree = tree_and_target
        hm = hodlr_zeros(tree, 1e-10, np.float64)
        panel = rng.standard_normal((n, 40))
        cols = np.arange(40)
        hm.axpy_dense(-1.0, panel, np.arange(n), cols, accumulate=True)
        assert hm.pending_accumulator_nbytes() > 0
        target = np.zeros((n, n))
        target[:, :40] = -panel
        # to_dense and matvec must see the unflushed updates
        assert np.linalg.norm(hm.to_dense() - target) <= 1e-8
        x = rng.standard_normal(n)
        np.testing.assert_allclose(hm.matvec(x), target @ x, atol=1e-8)
        # nbytes includes the pending factors
        assert hm.nbytes() >= hm.pending_accumulator_nbytes()

    def test_deltas_track_tree_walk_exactly(self, tree_and_target, rng):
        """Incremental accounting invariant: deltas == full re-walk."""
        n, tree = tree_and_target
        hm = hodlr_zeros(tree, 1e-8, np.float64)
        store = hm.nbytes()
        pending = 0
        for k in range(6):
            cols = np.arange(k * 25, min(n, (k + 1) * 25))
            panel = rng.standard_normal((n, len(cols)))
            s_d, p_d = hm.axpy_dense(1.0, panel, np.arange(n), cols,
                                     accumulate=True,
                                     max_accumulated_rank=16)
            store += s_d
            pending += p_d
            assert pending == hm.pending_accumulator_nbytes()
            assert store + pending == hm.nbytes()
        s_d, p_d = hm.flush_accumulators()
        store += s_d
        pending += p_d
        assert pending == 0
        assert store == hm.nbytes()

    def test_budget_trip_flushes_midstream(self, tree_and_target, rng):
        n, tree = tree_and_target
        hm = hodlr_zeros(tree, 1e-8, np.float64)
        for k in range(5):
            panel = rng.standard_normal((n, 30))
            hm.axpy_dense(1.0, panel, np.arange(n),
                          np.arange(30 * k, 30 * (k + 1)),
                          accumulate=True, max_accumulated_rank=4)
        # tiny budget: mid-stream flushes happened before the final one
        assert hm.n_offdiag_recompressions > 0

    def test_copy_with_pending_state_is_rejected(self, tree_and_target, rng):
        n, tree = tree_and_target
        hm = hodlr_zeros(tree, 1e-8, np.float64)
        hm.axpy_dense(1.0, rng.standard_normal((n, 20)), np.arange(n),
                      np.arange(20), accumulate=True)
        with pytest.raises(ConfigurationError, match="unflushed"):
            hm.copy()
        hm.flush_accumulators()
        hm.copy()  # flushed: fine

    def test_gather_temporary_is_charged(self, rng):
        n = 96
        pts = rng.random((n, 3))
        tree = build_cluster_tree(pts, leaf_size=24)
        a = rng.standard_normal((n, n))
        hm = hodlr_from_dense(a, tree, tol=1e-8)
        tracker = MemoryTracker()
        panel = rng.standard_normal((n, 32))
        hm.axpy_dense(-1.0, panel, np.arange(n), np.arange(32),
                      tracker=tracker)
        assert tracker.peak_categories.get("axpy_gather", 0) >= panel.nbytes
        assert tracker.in_use == 0

    def test_precompress_plan_is_pure(self, tree_and_target, rng):
        """precompress mutates nothing until commit applies the plan."""
        n, tree = tree_and_target
        hm = hodlr_zeros(tree, 1e-8, np.float64)
        before = hm.to_dense().copy()
        plan = hm.precompress_axpy(1.0, rng.standard_normal((n, 30)),
                                   np.arange(n), np.arange(30))
        np.testing.assert_array_equal(hm.to_dense(), before)
        assert plan.nbytes > 0
        hm.commit_axpy(plan)
        assert np.linalg.norm(hm.to_dense() - before) > 0


# -- config / env resolution ---------------------------------------------------
class TestAccumulateConfig:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(AXPY_ACCUMULATE_ENV, "0")
        assert resolve_axpy_accumulate(True) is True
        assert SolverConfig(axpy_accumulate=True).effective_axpy_accumulate

    def test_env_fallback_and_default(self, monkeypatch):
        monkeypatch.delenv(AXPY_ACCUMULATE_ENV, raising=False)
        assert resolve_axpy_accumulate(None) is True
        monkeypatch.setenv(AXPY_ACCUMULATE_ENV, "off")
        assert resolve_axpy_accumulate(None) is False
        assert not SolverConfig().effective_axpy_accumulate

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(AXPY_ACCUMULATE_ENV, "maybe")
        with pytest.raises(ValueError, match="boolean"):
            resolve_axpy_accumulate(None)

    def test_rank_budget_validated(self):
        with pytest.raises(ConfigurationError, match="axpy_max_accumulated"):
            SolverConfig(axpy_max_accumulated_rank=0)


# -- end-to-end: determinism, accuracy, recompression reduction ----------------
def _assemble_compressed(problem, **cfg_kwargs):
    config = SolverConfig(dense_backend="hmat", n_c=64, n_s_block=256,
                          **cfg_kwargs)
    ctx = make_multi_solve_context(problem, config)
    mf, container, sparse_bytes = assemble_multi_solve(ctx)
    s_dense = container.s.to_dense()
    recompressions = container.s.n_offdiag_recompressions
    sol = finalize_solution(ctx, mf, container, sparse_bytes)
    return s_dense, recompressions, sol


class TestEndToEnd:
    def test_schur_byte_identical_across_worker_counts(self, pipe_small):
        s1, _, sol1 = _assemble_compressed(pipe_small, axpy_accumulate=True,
                                           n_workers=1)
        s4, _, sol4 = _assemble_compressed(pipe_small, axpy_accumulate=True,
                                           n_workers=4)
        assert np.array_equal(s1, s4)
        assert np.array_equal(sol1.x_s, sol4.x_s)
        assert np.array_equal(sol1.x_v, sol4.x_v)

    def test_accumulation_reduces_recompressions(self, pipe_small):
        _, rec_on, sol_on = _assemble_compressed(pipe_small,
                                                 axpy_accumulate=True)
        _, rec_off, sol_off = _assemble_compressed(pipe_small,
                                                   axpy_accumulate=False)
        assert rec_on * 2 <= rec_off
        assert sol_on.relative_error <= SolverConfig().epsilon
        assert sol_off.relative_error <= SolverConfig().epsilon

    def test_multi_factorization_accumulate_matches_modes(self, pipe_small):
        config = SolverConfig(dense_backend="hmat", n_b=2, n_c=64)
        on = solve_multi_factorization(
            pipe_small, config.with_(axpy_accumulate=True))
        off = solve_multi_factorization(
            pipe_small, config.with_(axpy_accumulate=False))
        eps = config.epsilon
        assert on.relative_error <= eps
        assert off.relative_error <= eps

    def test_multi_factorization_identical_across_workers(self, pipe_small):
        config = SolverConfig(dense_backend="hmat", n_b=2, n_c=64,
                              axpy_accumulate=True)
        s1 = solve_multi_factorization(pipe_small, config.with_(n_workers=1))
        s4 = solve_multi_factorization(pipe_small, config.with_(n_workers=4))
        assert np.array_equal(s1.x_s, s4.x_s)
        assert np.array_equal(s1.x_v, s4.x_v)

    def test_stats_record_accumulate_flag(self, pipe_small):
        sol = solve_multi_solve(
            pipe_small,
            SolverConfig(dense_backend="hmat", axpy_accumulate=True),
        )
        assert sol.stats.params["axpy_accumulate"] is True
        assert "axpy_accumulator" in sol.stats.peak_by_category
