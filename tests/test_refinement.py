"""Tests for iterative refinement on the coupled solve."""

import pytest

from repro.core import SolverConfig, solve_coupled
from repro.utils.errors import ConfigurationError

LOOSE = SolverConfig(dense_backend="hmat", epsilon=1e-2, n_c=96,
                     n_s_block=256)


class TestIterativeRefinement:
    def test_each_step_reduces_error(self, pipe_medium):
        errors = []
        for steps in (0, 1, 2):
            sol = solve_coupled(pipe_medium, "multi_solve",
                                LOOSE.with_(refinement_steps=steps))
            errors.append(sol.relative_error)
        assert errors[1] < 0.2 * errors[0]
        assert errors[2] < 0.2 * errors[1]

    def test_loose_compression_plus_refinement_beats_tight(self, pipe_medium):
        """ε=1e-2 storage with 2 IR steps reaches ε=1e-4-class accuracy."""
        loose_refined = solve_coupled(
            pipe_medium, "multi_solve", LOOSE.with_(refinement_steps=2)
        )
        tight_direct = solve_coupled(
            pipe_medium, "multi_solve", LOOSE.with_(epsilon=1e-4)
        )
        assert loose_refined.relative_error < tight_direct.relative_error
        assert loose_refined.stats.schur_bytes < tight_direct.stats.schur_bytes

    def test_refinement_phase_timed(self, pipe_small):
        sol = solve_coupled(pipe_small, "multi_solve",
                            LOOSE.with_(refinement_steps=1))
        assert sol.stats.phases.get("iterative_refinement", 0) >= 0
        assert "iterative_refinement" in sol.stats.phases

    def test_works_for_multi_factorization(self, pipe_small):
        sol = solve_coupled(
            pipe_small, "multi_factorization",
            LOOSE.with_(refinement_steps=2, n_b=2),
        )
        assert sol.relative_error < 1e-4

    def test_works_on_exact_factorization(self, pipe_small):
        """Refinement on an (almost) exact solve is a harmless no-op."""
        base = SolverConfig(sparse_compression=False)
        plain = solve_coupled(pipe_small, "advanced", base)
        refined = solve_coupled(pipe_small, "advanced",
                                base.with_(refinement_steps=1))
        assert refined.relative_error <= plain.relative_error * 10 + 1e-14

    def test_complex_nonsymmetric(self, aircraft_small):
        sol = solve_coupled(
            aircraft_small, "multi_solve",
            SolverConfig(dense_backend="hmat", epsilon=1e-3,
                         refinement_steps=2),
        )
        assert sol.relative_error < 1e-6

    def test_negative_steps_rejected(self):
        with pytest.raises(ConfigurationError):
            SolverConfig(refinement_steps=-1)

    def test_solve_count_grows_with_steps(self, pipe_small):
        a = solve_coupled(pipe_small, "multi_solve",
                          LOOSE.with_(refinement_steps=0))
        b = solve_coupled(pipe_small, "multi_solve",
                          LOOSE.with_(refinement_steps=2))
        assert b.stats.n_sparse_solves == a.stats.n_sparse_solves + 4
