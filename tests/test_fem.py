"""Tests for the FEM volume-block assembly."""

import numpy as np
import pytest

from repro.fembem.fem import (
    assemble_fem_matrix,
    coefficient_field,
    laplacian_3d,
    q1_mass_3d,
    q1_stiffness_3d,
)
from repro.fembem.mesh import StructuredGrid
from repro.utils.errors import ConfigurationError


@pytest.fixture(scope="module")
def grid():
    return StructuredGrid(6, 5, 4)


class TestLaplacian:
    def test_seven_point_row_structure(self, grid):
        k = laplacian_3d(grid)
        nnz_per_row = np.diff(k.indptr)
        assert nnz_per_row.max() == 7
        assert nnz_per_row.min() == 4  # corners

    def test_symmetric(self, grid):
        k = laplacian_3d(grid)
        assert (k - k.T).nnz == 0

    def test_positive_definite(self, grid):
        """The Toeplitz stencil embeds Dirichlet walls: strictly PD."""
        k = laplacian_3d(grid)
        evs = np.linalg.eigvalsh(k.toarray())
        assert evs.min() > 0


class TestQ1:
    def test_27_point_connectivity(self, grid):
        # curiosity of the 3-D trilinear Laplacian: the six face-neighbour
        # weights cancel exactly, leaving 21 structural nonzeros; the
        # assembled operator (stiffness + mass) has the full 27
        k = q1_stiffness_3d(grid)
        assert np.diff(k.indptr).max() == 21
        a = assemble_fem_matrix(grid, mode="real_spd", stencil="q1")
        assert np.diff(a.indptr).max() == 27

    def test_stiffness_symmetric_psd(self, grid):
        k = q1_stiffness_3d(grid)
        assert abs(k - k.T).max() < 1e-12
        evs = np.linalg.eigvalsh(k.toarray())
        assert evs.min() > -1e-10

    def test_stiffness_kernel_is_constants(self, grid):
        k = q1_stiffness_3d(grid)
        ones = np.ones(grid.n_points)
        np.testing.assert_allclose(k @ ones, 0.0, atol=1e-10)

    def test_mass_rows_integrate_to_volume(self, grid):
        m = q1_mass_3d(grid)
        total = float(m.sum())
        vol = np.prod(grid.extent())
        assert total == pytest.approx(vol, rel=1e-10)

    def test_mass_spd(self, grid):
        m = q1_mass_3d(grid)
        evs = np.linalg.eigvalsh(m.toarray())
        assert evs.min() > 0

    def test_q1_has_more_fill_than_7pt(self, grid):
        assert q1_stiffness_3d(grid).nnz > 2 * laplacian_3d(grid).nnz


class TestCoefficientField:
    def test_positive_and_bounded(self, grid):
        c = coefficient_field(grid, heterogeneity=0.8)
        assert c.min() > 0
        assert c.max() <= 1.8 + 1e-12

    def test_zero_heterogeneity_is_uniform(self, grid):
        c = coefficient_field(grid, heterogeneity=0.0)
        np.testing.assert_allclose(c, 1.0)

    def test_invalid_heterogeneity_rejected(self, grid):
        with pytest.raises(ConfigurationError):
            coefficient_field(grid, heterogeneity=1.0)
        with pytest.raises(ConfigurationError):
            coefficient_field(grid, heterogeneity=-0.1)


class TestAssembly:
    def test_real_spd_is_spd(self, grid):
        a = assemble_fem_matrix(grid, mode="real_spd")
        assert a.dtype == np.float64
        assert abs(a - a.T).max() < 1e-12
        evs = np.linalg.eigvalsh(a.toarray())
        assert evs.min() > 0

    def test_7pt_stencil_option(self, grid):
        a7 = assemble_fem_matrix(grid, mode="real_spd", stencil="7pt")
        aq = assemble_fem_matrix(grid, mode="real_spd", stencil="q1")
        assert aq.nnz > a7.nnz
        evs = np.linalg.eigvalsh(a7.toarray())
        assert evs.min() > 0

    def test_complex_nonsym_is_complex_and_nonsymmetric(self, grid):
        a = assemble_fem_matrix(grid, mode="complex_nonsym")
        assert np.issubdtype(a.dtype, np.complexfloating)
        assert abs(a - a.T).max() > 1e-8  # convection breaks value symmetry

    def test_complex_nonsym_pattern_is_symmetric(self, grid):
        a = assemble_fem_matrix(grid, mode="complex_nonsym")
        p = (a != 0).astype(int)
        assert (p - p.T).nnz == 0

    def test_complex_without_convection_is_symmetric(self, grid):
        a = assemble_fem_matrix(grid, mode="complex_nonsym", convection=0.0)
        assert abs(a - a.T).max() < 1e-12

    def test_damping_moves_spectrum_off_real_axis(self, grid):
        a = assemble_fem_matrix(grid, mode="complex_nonsym", damping=0.7,
                                convection=0.0)
        evs = np.linalg.eigvals(a.toarray())
        assert evs.imag.min() > 0  # uniformly damped

    def test_unknown_mode_rejected(self, grid):
        with pytest.raises(ConfigurationError):
            assemble_fem_matrix(grid, mode="bogus")

    def test_unknown_stencil_rejected(self, grid):
        with pytest.raises(ConfigurationError):
            assemble_fem_matrix(grid, stencil="5pt")

    def test_sorted_indices(self, grid):
        a = assemble_fem_matrix(grid)
        assert a.has_sorted_indices
