"""Tests for the DenseSolver facade (SPIDO role)."""

import numpy as np
import pytest

from repro.dense import DenseSolver
from repro.memory import MemoryTracker
from repro.utils.errors import ConfigurationError


@pytest.fixture()
def spd(rng):
    a = rng.standard_normal((60, 60))
    return a @ a.T + 60 * np.eye(60)


@pytest.fixture()
def nonsym(rng):
    return rng.standard_normal((60, 60)) + 6 * np.eye(60)


class TestFactorizeDispatch:
    def test_auto_picks_ldlt_for_symmetric(self, spd):
        fact = DenseSolver().factorize(spd)
        assert fact.method == "ldlt"
        fact.free()

    def test_auto_picks_lu_for_nonsymmetric(self, nonsym):
        fact = DenseSolver().factorize(nonsym)
        assert fact.method == "lu"
        fact.free()

    def test_symmetric_hint_skips_probe(self, nonsym):
        # the caller's structural knowledge wins over probing
        fact = DenseSolver().factorize(nonsym + nonsym.T, symmetric=True)
        assert fact.method == "ldlt"
        fact.free()

    def test_explicit_cholesky(self, spd, rng):
        fact = DenseSolver(method="cholesky").factorize(spd)
        assert fact.method == "cholesky"
        b = rng.standard_normal(60)
        np.testing.assert_allclose(spd @ fact.solve(b), b, rtol=1e-8)
        fact.free()

    def test_invalid_method_rejected(self):
        with pytest.raises(ConfigurationError):
            DenseSolver(method="qr")

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ConfigurationError):
            DenseSolver(block_size=0)


class TestSolveAndMemory:
    def test_solve_accuracy_all_methods(self, spd, nonsym, rng):
        b = rng.standard_normal((60, 2))
        for a, sym in [(spd, True), (nonsym, False)]:
            fact = DenseSolver(block_size=16).factorize(a, symmetric=sym)
            np.testing.assert_allclose(a @ fact.solve(b), b, rtol=1e-8)
            fact.free()

    def test_transpose_solve_lu_only(self, nonsym, spd, rng):
        b = rng.standard_normal(60)
        fact = DenseSolver().factorize(nonsym, symmetric=False)
        np.testing.assert_allclose(nonsym.T @ fact.solve(b, trans=1), b,
                                   rtol=1e-8)
        fact.free()
        fact = DenseSolver().factorize(spd, symmetric=True)
        with pytest.raises(ConfigurationError):
            fact.solve(b, trans=1)
        fact.free()

    def test_memory_tracked_and_freed(self, spd):
        t = MemoryTracker()
        fact = DenseSolver(tracker=t).factorize(spd, symmetric=True)
        assert t.category_in_use("dense_factor") == fact.factor_bytes > 0
        fact.free()
        t.assert_all_freed()

    def test_solve_after_free_raises(self, spd):
        fact = DenseSolver().factorize(spd, symmetric=True)
        fact.free()
        with pytest.raises(RuntimeError):
            fact.solve(np.zeros(60))

    def test_double_free_is_safe(self, spd):
        t = MemoryTracker()
        fact = DenseSolver(tracker=t).factorize(spd, symmetric=True)
        fact.free()
        fact.free()
        t.assert_all_freed()

    def test_ldlt_uses_less_factor_memory_than_lu(self, spd):
        f_ldlt = DenseSolver().factorize(spd, symmetric=True)
        f_lu = DenseSolver(method="lu").factorize(spd)
        # LDLᵀ stores one triangle (plus d); LU stores both
        assert f_ldlt.factor_bytes <= f_lu.factor_bytes + 8 * 60
        f_ldlt.free()
        f_lu.free()

    def test_input_matrix_not_modified(self, spd):
        a0 = spd.copy()
        fact = DenseSolver().factorize(spd, symmetric=True)
        np.testing.assert_array_equal(spd, a0)
        fact.free()
