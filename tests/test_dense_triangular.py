"""Tests for the blocked triangular solves."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.linalg import solve_triangular

from repro.dense.triangular import (
    solve_lower_triangular,
    solve_unit_lower_triangular,
    solve_upper_triangular,
)


def _lower(rng, n, dtype=np.float64):
    l = np.tril(rng.standard_normal((n, n))).astype(dtype)
    np.fill_diagonal(l, 2.0 + np.abs(np.diag(l)))
    return l


class TestLowerSolve:
    @pytest.mark.parametrize("n,bs", [(1, 1), (5, 2), (64, 64), (130, 32),
                                      (200, 128)])
    def test_matches_scipy(self, rng, n, bs):
        l = _lower(rng, n)
        b = rng.standard_normal((n, 3))
        x = solve_lower_triangular(l, b, block_size=bs)
        np.testing.assert_allclose(x, solve_triangular(l, b, lower=True),
                                   rtol=1e-10)

    def test_vector_rhs_stays_vector(self, rng):
        l = _lower(rng, 20)
        b = rng.standard_normal(20)
        x = solve_lower_triangular(l, b, block_size=8)
        assert x.shape == (20,)
        np.testing.assert_allclose(l @ x, b, rtol=1e-10)

    def test_complex(self, rng):
        n = 40
        l = _lower(rng, n).astype(complex)
        l += 1j * np.tril(rng.standard_normal((n, n)), -1)
        b = rng.standard_normal((n, 2)) + 1j * rng.standard_normal((n, 2))
        x = solve_lower_triangular(l, b, block_size=16)
        np.testing.assert_allclose(l @ x, b, rtol=1e-10)

    def test_shape_mismatch_rejected(self, rng):
        l = _lower(rng, 5)
        with pytest.raises(ValueError):
            solve_lower_triangular(l, np.zeros(6))


class TestUnitLowerSolve:
    def test_diagonal_is_ignored(self, rng):
        n = 50
        l = _lower(rng, n)
        b = rng.standard_normal((n, 2))
        x1 = solve_unit_lower_triangular(l, b, block_size=16)
        l_scrambled = l.copy()
        np.fill_diagonal(l_scrambled, 1e9)  # unit solves must not read it
        x2 = solve_unit_lower_triangular(l_scrambled, b, block_size=16)
        np.testing.assert_allclose(x1, x2)
        lu = np.tril(l, -1) + np.eye(n)
        np.testing.assert_allclose(lu @ x1, b, rtol=1e-10)


class TestUpperSolve:
    @pytest.mark.parametrize("n,bs", [(3, 2), (64, 16), (129, 64)])
    def test_matches_scipy(self, rng, n, bs):
        u = _lower(rng, n).T.copy()
        b = rng.standard_normal((n, 4))
        x = solve_upper_triangular(u, b, block_size=bs)
        np.testing.assert_allclose(x, solve_triangular(u, b, lower=False),
                                   rtol=1e-10)

    def test_residual_small(self, rng):
        u = _lower(rng, 77).T.copy()
        b = rng.standard_normal(77)
        x = solve_upper_triangular(u, b, block_size=25)
        np.testing.assert_allclose(u @ x, b, rtol=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 60),
    bs=st.integers(1, 70),
    seed=st.integers(0, 1000),
)
def test_property_lower_solve_inverts(n, bs, seed):
    """For any size/block combination, L @ solve(L, b) == b."""
    rng = np.random.default_rng(seed)
    l = _lower(rng, n)
    b = rng.standard_normal(n)
    x = solve_lower_triangular(l, b, block_size=bs)
    np.testing.assert_allclose(l @ x, b, rtol=1e-8, atol=1e-8)
