"""Tests for the result containers and the report renderers."""

import numpy as np
import pytest

from repro.core import SolverConfig, SolveStats, solve_coupled
from repro.core.result import CoupledSolution
from repro.runner.reporting import (
    render_fig10,
    render_fig11,
    render_table,
)
from repro.utils.errors import ConfigurationError


def _stats(**over):
    base = dict(
        algorithm="multi_solve", coupling="MUMPS/HMAT",
        n_total=1000, n_fem=900, n_bem=100,
        phases={"a": 1.0, "b": 2.0}, total_time=3.0,
        peak_bytes=1 << 20, schur_bytes=100, schur_dense_bytes=400,
        sparse_factor_bytes=10,
    )
    base.update(over)
    return SolveStats(**base)


class TestSolveStats:
    def test_summary_line(self):
        s = _stats()
        line = s.summary()
        assert "multi_solve" in line and "MUMPS/HMAT" in line
        assert "1.00 MiB" in line

    def test_compression_ratio(self):
        assert _stats().schur_compression_ratio == pytest.approx(0.25)

    def test_compression_ratio_nan_without_reference(self):
        s = _stats(schur_dense_bytes=0)
        assert np.isnan(s.schur_compression_ratio)


class TestCoupledSolution:
    def test_concatenated_solution(self):
        sol = CoupledSolution(
            x_v=np.array([1.0, 2.0]), x_s=np.array([3.0]), stats=_stats()
        )
        np.testing.assert_array_equal(sol.x, [1.0, 2.0, 3.0])


class TestRandomizedGuard:
    def test_randomized_requires_hmat(self, pipe_small):
        with pytest.raises(ConfigurationError):
            solve_coupled(
                pipe_small, "multi_solve",
                SolverConfig(dense_backend="spido",
                             schur_assembly="randomized"),
            )


class TestRenderers:
    def test_fig10_capacity_summary_lists_paper_values(self):
        rows = [
            {"n_total": 4000, "algorithm": "multi_solve",
             "coupling": "MUMPS/HMAT", "feasible": True, "time": 1.0,
             "peak_bytes": 100, "relative_error": 1e-5,
             "n_c": 1, "n_s_block": 1, "n_b": 1},
            {"n_total": 8000, "algorithm": "multi_solve",
             "coupling": "MUMPS/HMAT", "feasible": False,
             "oom_bytes": 10**9,
             "n_c": 1, "n_s_block": 1, "n_b": 1},
        ]
        text = render_fig10(rows)
        assert "Largest processable system" in text
        assert "9,000,000" in text  # the paper's reference value
        assert "OOM" in text

    def test_fig11_marks_violations(self):
        rows = [
            {"n_total": 4000, "algorithm": "a", "coupling": "c",
             "feasible": True, "relative_error": 5e-3},
        ]
        text = render_fig11(rows, epsilon=1e-3)
        assert "NO" in text

    def test_render_table_handles_mixed_types(self):
        text = render_table(["x", "y"], [(1, None), ("abc", 2.5)])
        assert "abc" in text

    def test_fig10_infeasible_only_rows(self):
        rows = [{
            "n_total": 100, "algorithm": "baseline",
            "coupling": "MUMPS/SPIDO", "feasible": False,
            "oom_bytes": 12345, "n_c": 1, "n_s_block": 1, "n_b": 1,
        }]
        text = render_fig10(rows)
        assert "OOM" in text
