"""Tests for blocked LU, LDLᵀ and Cholesky factorizations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.linalg import lu_factor as scipy_lu_factor

from repro.dense.blocked_lu import blocked_lu, lu_solve
from repro.dense.cholesky import blocked_cholesky, cholesky_solve
from repro.dense.ldlt import blocked_ldlt, ldlt_solve
from repro.utils.errors import SingularMatrixError


def _well_conditioned(rng, n, dtype=np.float64):
    a = rng.standard_normal((n, n)).astype(dtype)
    if np.issubdtype(dtype, np.complexfloating):
        a = a + 1j * rng.standard_normal((n, n))
    a += n * 0.05 * np.eye(n)
    return a


class TestBlockedLU:
    @pytest.mark.parametrize("n,bs", [(1, 1), (7, 3), (50, 8), (128, 128),
                                      (257, 64)])
    def test_solve_accuracy(self, rng, n, bs):
        a = _well_conditioned(rng, n)
        b = rng.standard_normal((n, 3))
        lu, piv = blocked_lu(a, block_size=bs)
        x = lu_solve(lu, piv, b, block_size=bs)
        np.testing.assert_allclose(a @ x, b, rtol=1e-8, atol=1e-8)

    def test_matches_lapack_factors(self, rng):
        """With one panel the compact LU must equal LAPACK's exactly."""
        a = _well_conditioned(rng, 40)
        lu, piv = blocked_lu(a, block_size=64)
        lu_ref, piv_ref = scipy_lu_factor(a)
        np.testing.assert_allclose(lu, lu_ref, rtol=1e-12)
        np.testing.assert_array_equal(piv, piv_ref)

    def test_transpose_solve(self, rng):
        a = _well_conditioned(rng, 90)
        b = rng.standard_normal(90)
        lu, piv = blocked_lu(a, block_size=32)
        x = lu_solve(lu, piv, b, trans=1, block_size=32)
        np.testing.assert_allclose(a.T @ x, b, rtol=1e-8)

    def test_pivoting_handles_zero_leading_entry(self, rng):
        a = _well_conditioned(rng, 30)
        a[0, 0] = 0.0
        b = rng.standard_normal(30)
        lu, piv = blocked_lu(a, block_size=8)
        x = lu_solve(lu, piv, b, block_size=8)
        np.testing.assert_allclose(a @ x, b, rtol=1e-8)

    def test_complex_nonsymmetric(self, rng):
        a = _well_conditioned(rng, 70, np.complex128)
        b = rng.standard_normal((70, 2)) + 1j * rng.standard_normal((70, 2))
        lu, piv = blocked_lu(a, block_size=20)
        x = lu_solve(lu, piv, b, block_size=20)
        np.testing.assert_allclose(a @ x, b, rtol=1e-8)

    def test_singular_matrix_raises(self):
        a = np.zeros((5, 5))
        with pytest.raises(SingularMatrixError):
            blocked_lu(a)

    def test_non_square_rejected(self):
        from repro.utils.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            blocked_lu(np.zeros((3, 4)))

    def test_input_not_modified(self, rng):
        a = _well_conditioned(rng, 20)
        a0 = a.copy()
        blocked_lu(a, block_size=8)
        np.testing.assert_array_equal(a, a0)

    def test_overwrite_reuses_buffer(self, rng):
        a = _well_conditioned(rng, 20)
        lu, _ = blocked_lu(a, block_size=8, overwrite=True)
        assert lu is a

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(2, 48), bs=st.integers(1, 50), seed=st.integers(0, 500))
    def test_property_plu_reconstructs(self, n, bs, seed):
        rng = np.random.default_rng(seed)
        a = _well_conditioned(rng, n)
        lu, piv = blocked_lu(a, block_size=bs)
        x = lu_solve(lu, piv, np.eye(n), block_size=bs)
        np.testing.assert_allclose(a @ x, np.eye(n), atol=1e-6)


class TestBlockedLDLT:
    @pytest.mark.parametrize("n,bs", [(1, 1), (10, 4), (128, 128), (200, 64)])
    def test_real_symmetric(self, rng, n, bs):
        a = rng.standard_normal((n, n))
        a = a + a.T + 4 * n * 0.05 * np.eye(n)
        l, d = blocked_ldlt(a, block_size=bs)
        np.testing.assert_allclose((l * d) @ l.T, a, rtol=1e-8, atol=1e-8)

    def test_l_is_unit_lower(self, rng):
        a = rng.standard_normal((30, 30))
        a = a + a.T + 10 * np.eye(30)
        l, _ = blocked_ldlt(a, block_size=8)
        np.testing.assert_allclose(np.diag(l), 1.0)
        assert np.allclose(np.triu(l, 1), 0.0)

    def test_solve(self, rng):
        a = rng.standard_normal((150, 150))
        a = a + a.T + 30 * np.eye(150)
        b = rng.standard_normal((150, 3))
        l, d = blocked_ldlt(a, block_size=48)
        x = ldlt_solve(l, d, b, block_size=48)
        np.testing.assert_allclose(a @ x, b, rtol=1e-8)

    def test_complex_symmetric_not_hermitian(self, rng):
        """LDLᵀ must use the plain transpose (complex symmetric input)."""
        n = 80
        a = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        a = a + a.T + 20 * np.eye(n)
        assert not np.allclose(a, a.conj().T)  # genuinely non-Hermitian
        l, d = blocked_ldlt(a, block_size=32)
        np.testing.assert_allclose((l * d) @ l.T, a, rtol=1e-8)
        b = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        x = ldlt_solve(l, d, b, block_size=32)
        np.testing.assert_allclose(a @ x, b, rtol=1e-8)

    def test_only_lower_triangle_read(self, rng):
        a = rng.standard_normal((40, 40))
        a = a + a.T + 15 * np.eye(40)
        garbage = a.copy()
        garbage[np.triu_indices(40, 1)] = 1e9
        l1, d1 = blocked_ldlt(a, block_size=16)
        l2, d2 = blocked_ldlt(garbage, block_size=16)
        np.testing.assert_allclose(l1, l2)
        np.testing.assert_allclose(d1, d2)

    def test_zero_pivot_raises(self):
        with pytest.raises(SingularMatrixError):
            blocked_ldlt(np.zeros((4, 4)))


class TestBlockedCholesky:
    @pytest.mark.parametrize("n,bs", [(1, 1), (64, 16), (150, 128)])
    def test_real_spd(self, rng, n, bs):
        a = rng.standard_normal((n, n))
        a = a @ a.T + n * np.eye(n)
        l = blocked_cholesky(a, block_size=bs)
        np.testing.assert_allclose(l @ l.T, a, rtol=1e-8)

    def test_solve(self, rng):
        a = rng.standard_normal((100, 100))
        a = a @ a.T + 100 * np.eye(100)
        b = rng.standard_normal((100, 2))
        l = blocked_cholesky(a, block_size=32)
        x = cholesky_solve(l, b, block_size=32)
        np.testing.assert_allclose(a @ x, b, rtol=1e-8)

    def test_hermitian_positive_definite(self, rng):
        n = 60
        m = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        a = m @ m.conj().T + n * np.eye(n)
        l = blocked_cholesky(a, block_size=24)
        np.testing.assert_allclose(l @ l.conj().T, a, rtol=1e-8)
        b = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        x = cholesky_solve(l, b, block_size=24)
        np.testing.assert_allclose(a @ x, b, rtol=1e-8)

    def test_indefinite_raises(self, rng):
        a = np.diag([1.0, -1.0, 1.0])
        with pytest.raises(SingularMatrixError):
            blocked_cholesky(a)
