"""Tests for the dense BEM surface operators."""

import numpy as np
import pytest

from repro.fembem.bem import (
    KernelMatrix,
    helmholtz_kernel,
    laplace_kernel,
    make_surface_operator,
)
from repro.fembem.mesh import box_surface_points
from repro.utils.errors import ConfigurationError


@pytest.fixture(scope="module")
def points():
    return box_surface_points((4.0, 2.0, 2.0), 150, seed=11)


class TestKernels:
    def test_laplace_symmetric_positive(self, points):
        k = laplace_kernel(0.1)
        g = k(points, points)
        assert (g > 0).all()
        np.testing.assert_allclose(g, g.T)

    def test_laplace_decays_with_distance(self):
        k = laplace_kernel(0.01)
        x = np.zeros((1, 3))
        near = np.array([[0.5, 0, 0]])
        far = np.array([[5.0, 0, 0]])
        assert k(x, near)[0, 0] > k(x, far)[0, 0]

    def test_laplace_regularization_bounds_diagonal(self):
        k = laplace_kernel(0.2)
        x = np.zeros((1, 3))
        assert np.isfinite(k(x, x))[0, 0]
        assert k(x, x)[0, 0] == pytest.approx(1.0 / (4 * np.pi * 0.2))

    def test_helmholtz_is_complex_oscillatory(self, points):
        k = helmholtz_kernel(2.0, 0.1)
        g = k(points[:20], points[20:40])
        assert np.issubdtype(g.dtype, np.complexfloating)
        assert np.abs(g.imag).max() > 0

    def test_helmholtz_zero_wavenumber_reduces_to_laplace(self, points):
        kh = helmholtz_kernel(0.0, 0.1)
        kl = laplace_kernel(0.1)
        np.testing.assert_allclose(
            kh(points[:10], points[:10]).real, kl(points[:10], points[:10])
        )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            laplace_kernel(0.0)
        with pytest.raises(ConfigurationError):
            helmholtz_kernel(-1.0, 0.1)
        with pytest.raises(ConfigurationError):
            helmholtz_kernel(1.0, 0.0)


class TestKernelMatrix:
    def test_block_matches_to_dense(self, points):
        op = make_surface_operator(points, kind="laplace")
        dense = op.to_dense()
        rows = np.array([0, 5, 17])
        cols = np.array([3, 5, 99, 100])
        np.testing.assert_allclose(op.block(rows, cols),
                                   dense[np.ix_(rows, cols)])

    def test_diagonal_shift_only_on_diagonal(self, points):
        op = make_surface_operator(points, kind="laplace", diagonal_shift=2.5)
        dense = op.to_dense()
        off = dense - np.diag(np.diag(dense))
        base = make_surface_operator(points, kind="laplace", diagonal_shift=0.0)
        np.testing.assert_allclose(off, base.to_dense()
                                   - np.diag(np.diag(base.to_dense())))

    def test_matvec_matches_dense(self, points):
        op = make_surface_operator(points, kind="helmholtz", wavenumber=1.5)
        dense = op.to_dense()
        rng = np.random.default_rng(0)
        x = rng.standard_normal(len(points)) + 1j * rng.standard_normal(len(points))
        np.testing.assert_allclose(op.matvec(x, block_size=37), dense @ x,
                                   rtol=1e-12)

    def test_matvec_matrix_rhs(self, points):
        op = make_surface_operator(points, kind="laplace")
        dense = op.to_dense()
        x = np.random.default_rng(1).standard_normal((len(points), 3))
        np.testing.assert_allclose(op.matvec(x, block_size=64), dense @ x,
                                   rtol=1e-12)

    def test_matvec_dimension_mismatch(self, points):
        op = make_surface_operator(points)
        with pytest.raises(ConfigurationError):
            op.matvec(np.zeros(3))

    def test_operator_well_conditioned(self, points):
        """The second-kind shift keeps A_ss comfortably invertible."""
        op = make_surface_operator(points, kind="laplace")
        assert np.linalg.cond(op.to_dense()) < 100

    def test_symmetric_on_same_points(self, points):
        for kind in ("laplace", "helmholtz"):
            op = make_surface_operator(points, kind=kind)
            d = op.to_dense()
            np.testing.assert_allclose(d, d.T)

    def test_rectangular_operator(self, points):
        op = KernelMatrix(points[:30], points[30:80], laplace_kernel(0.1))
        assert op.shape == (30, 50)
        assert op.to_dense().shape == (30, 50)

    def test_diagonal_shift_requires_square(self, points):
        with pytest.raises(ConfigurationError):
            KernelMatrix(points[:10], points[:20], laplace_kernel(0.1),
                         diagonal_shift=1.0)

    def test_nbytes_dense(self, points):
        op = make_surface_operator(points)
        assert op.nbytes_dense() == len(points) ** 2 * 8

    def test_row_and_col_blocks(self, points):
        op = make_surface_operator(points)
        dense = op.to_dense()
        np.testing.assert_allclose(op.row_block([2, 4]), dense[[2, 4]])
        np.testing.assert_allclose(op.col_block([7]), dense[:, [7]])

    def test_bad_points_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            KernelMatrix(np.zeros((5, 2)), np.zeros((5, 2)),
                         laplace_kernel(0.1))

    def test_unknown_kind_rejected(self, points):
        with pytest.raises(ConfigurationError):
            make_surface_operator(points, kind="stokes")
