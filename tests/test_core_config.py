"""Tests for SolverConfig validation and helpers."""

import dataclasses

import pytest

from repro.core.config import SolverConfig
from repro.memory import MemoryTracker
from repro.utils.errors import ConfigurationError


class TestValidation:
    def test_defaults_valid(self):
        cfg = SolverConfig()
        assert cfg.dense_backend == "spido"
        assert cfg.epsilon == 1e-3

    @pytest.mark.parametrize("field,value", [
        ("dense_backend", "lapack"),
        ("compressor", "rrqr"),
        ("ordering", "amd"),
        ("epsilon", 0.0),
        ("epsilon", -1.0),
        ("n_c", 0),
        ("n_s_block", 0),
        ("n_b", 0),
        ("nd_leaf_size", 0),
        ("hodlr_leaf_size", 0),
        ("dense_block_size", 0),
        ("memory_limit", 0),
        ("compression_safety", 0.0),
        ("compression_safety", 1.5),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            SolverConfig(**{field: value})

    def test_frozen(self):
        cfg = SolverConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.n_c = 7


class TestHelpers:
    def test_coupling_name(self):
        assert SolverConfig(dense_backend="spido").coupling_name == "MUMPS/SPIDO"
        assert SolverConfig(dense_backend="hmat").coupling_name == "MUMPS/HMAT"

    def test_blr_config_reflects_compression_flag(self):
        assert SolverConfig(sparse_compression=False).blr_config() is None
        blr = SolverConfig(epsilon=1e-5).blr_config()
        assert blr is not None and blr.tol == 1e-5

    def test_hierarchical_tol_below_epsilon(self):
        cfg = SolverConfig(epsilon=1e-3)
        assert cfg.hierarchical_tol < cfg.epsilon

    def test_make_tracker_honours_limit(self):
        t = SolverConfig(memory_limit=1234).make_tracker("x")
        assert isinstance(t, MemoryTracker)
        assert t.limit_bytes == 1234
        assert SolverConfig().make_tracker().limit_bytes is None

    def test_with_updates_functionally(self):
        cfg = SolverConfig(n_c=64)
        cfg2 = cfg.with_(n_c=128, dense_backend="hmat")
        assert cfg.n_c == 64
        assert cfg2.n_c == 128
        assert cfg2.dense_backend == "hmat"
