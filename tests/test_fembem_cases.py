"""Tests for the coupled-problem container and the two case generators."""

import numpy as np
import pytest

from repro.fembem import generate_aircraft_case, generate_pipe_case
from repro.fembem.cases import CoupledProblem, smooth_field
from repro.fembem.pipe import pipe_grid_dims
from repro.memory.model import PIPE_BEM_COEFF
from repro.utils.errors import ConfigurationError


class TestSmoothField:
    def test_deterministic(self):
        pts = np.random.default_rng(0).uniform(size=(50, 3))
        a = smooth_field(pts, np.float64, seed=3)
        b = smooth_field(pts, np.float64, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_complex_dtype_has_imaginary_part(self):
        pts = np.random.default_rng(0).uniform(size=(50, 3))
        f = smooth_field(pts, np.complex128, seed=1)
        assert np.issubdtype(f.dtype, np.complexfloating)
        assert np.abs(f.imag).max() > 0

    def test_bounded_amplitude(self):
        pts = np.random.default_rng(0).uniform(size=(200, 3))
        f = smooth_field(pts, np.float64, seed=2)
        assert np.abs(f).max() < 10.0


class TestPipeGridDims:
    def test_exact_total(self):
        for n in (500, 4_000, 36_000):
            dims, n_fem, n_bem = pipe_grid_dims(n)
            assert n_fem + n_bem == n
            assert dims[0] * dims[1] * dims[2] == n_fem

    def test_bem_follows_paper_ratio(self):
        for n in (4_000, 16_000, 36_000):
            _, _, n_bem = pipe_grid_dims(n)
            expected = PIPE_BEM_COEFF * n ** (2.0 / 3.0)
            assert n_bem == pytest.approx(expected, rel=0.25)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            pipe_grid_dims(50)


class TestPipeCase:
    def test_exact_residual_of_manufactured_solution(self, pipe_small):
        assert pipe_small.residual_norm(
            pipe_small.x_v_exact, pipe_small.x_s_exact
        ) < 1e-12

    def test_relative_error_of_exact_is_zero(self, pipe_small):
        assert pipe_small.relative_error(
            pipe_small.x_v_exact, pipe_small.x_s_exact
        ) == 0.0

    def test_real_symmetric(self, pipe_small):
        assert pipe_small.symmetric
        assert pipe_small.dtype == np.float64
        a = pipe_small.a_vv
        assert abs(a - a.T).max() < 1e-12

    def test_total_count_exact(self):
        p = generate_pipe_case(2_345)
        assert p.n_total == 2_345

    def test_deterministic_given_seed(self):
        a = generate_pipe_case(1_200, seed=9)
        b = generate_pipe_case(1_200, seed=9)
        np.testing.assert_array_equal(a.b_v, b.b_v)
        np.testing.assert_array_equal(a.coords_s, b.coords_s)

    def test_coupling_is_thin(self, pipe_small):
        nnz_per_row = np.diff(pipe_small.a_sv.indptr)
        assert nnz_per_row.max() <= 8

    def test_dims_property(self, pipe_small):
        d = pipe_small.dims
        assert d.n_total == pipe_small.n_total
        assert d.n_bem == pipe_small.n_bem


class TestAircraftCase:
    def test_complex_nonsymmetric(self, aircraft_small):
        assert not aircraft_small.symmetric
        assert np.issubdtype(aircraft_small.dtype, np.complexfloating)
        a = aircraft_small.a_vv
        assert abs(a - a.T).max() > 1e-10

    def test_exact_residual(self, aircraft_small):
        assert aircraft_small.residual_norm(
            aircraft_small.x_v_exact, aircraft_small.x_s_exact
        ) < 1e-12

    def test_bem_fraction_respected(self):
        p = generate_aircraft_case(2_000, bem_fraction=0.2)
        assert p.n_bem == pytest.approx(0.2 * 2_000, rel=0.25)
        assert p.n_total == 2_000

    def test_surface_has_detached_wing_sheet(self, aircraft_small):
        """Some surface points sit clearly off the volume bounding box."""
        coords_v = aircraft_small.coords_v
        coords_s = aircraft_small.coords_s
        vmax = coords_v.max(axis=0)
        outside = (coords_s[:, 1] > vmax[1] + 1.0).sum()
        assert outside > 0.1 * len(coords_s)

    def test_wavenumber_scales_with_domain(self):
        small = generate_aircraft_case(1_500, bem_fraction=0.2)
        large = generate_aircraft_case(6_000, bem_fraction=0.2)
        # fixed wavelengths across the object: kappa shrinks as it grows
        assert large.a_ss_op.kernel is not small.a_ss_op.kernel

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_aircraft_case(2_000, bem_fraction=0.9)


class TestCoupledProblemValidation:
    def test_shape_mismatch_rejected(self, pipe_small):
        import scipy.sparse as sp
        with pytest.raises(ConfigurationError):
            CoupledProblem(
                name="bad",
                a_vv=pipe_small.a_vv,
                a_sv=sp.csr_matrix((3, 5)),
                a_ss_op=pipe_small.a_ss_op,
                coords_v=pipe_small.coords_v,
                coords_s=pipe_small.coords_s,
                b_v=pipe_small.b_v,
                b_s=pipe_small.b_s,
                x_v_exact=pipe_small.x_v_exact,
                x_s_exact=pipe_small.x_s_exact,
                symmetric=True,
            )
