"""Tests for the serving layer's numeric-factor cache.

Covers the ISSUE-8 cache contract: system fingerprints that track
values (not just patterns), exactly-once construction under concurrent
misses, LRU eviction order, exact tracker charging/releasing under the
``factor_cache`` category, and byte-identical solutions between a
cache-hit and a cache-miss path.  The module-level watchdog fixture
(see ``conftest.py``) verifies lock ordering around every test.
"""

import pickle
import threading

import numpy as np
import pytest

from repro.core import CoupledFactorization, SolverConfig
from repro.serving import (
    FACTOR_CACHE_CATEGORY,
    FactorCache,
    config_fingerprint_fields,
    system_fingerprint,
)
from repro.utils.errors import FactorizationFreed, MemoryLimitExceeded

CONFIG = SolverConfig(dense_backend="hmat", n_c=64)


def build_fact(problem, config=CONFIG):
    return CoupledFactorization(problem, "multi_solve", config)


class TestSystemFingerprint:
    def test_stable_across_pickle(self, pipe_small):
        clone = pickle.loads(pickle.dumps(pipe_small))
        assert system_fingerprint(pipe_small, "multi_solve", CONFIG) == \
            system_fingerprint(clone, "multi_solve", CONFIG)

    def test_sensitive_to_values(self, pipe_small):
        clone = pickle.loads(pickle.dumps(pipe_small))
        clone.a_vv.data[0] *= 1.0 + 1e-12
        assert system_fingerprint(pipe_small, "multi_solve", CONFIG) != \
            system_fingerprint(clone, "multi_solve", CONFIG)

    def test_sensitive_to_algorithm_and_config(self, pipe_small):
        base = system_fingerprint(pipe_small, "multi_solve", CONFIG)
        assert base != system_fingerprint(pipe_small, "baseline", CONFIG)
        other = SolverConfig(dense_backend="hmat", n_c=64, epsilon=1e-6)
        assert base != system_fingerprint(pipe_small, "multi_solve", other)

    def test_execution_knobs_do_not_change_the_key(self, pipe_small):
        """Backends/worker counts are bit-identical by contract, so a
        factorization built under one serves requests made under another."""
        base = system_fingerprint(pipe_small, "multi_solve", CONFIG)
        wide = SolverConfig(dense_backend="hmat", n_c=64, n_workers=4,
                            serve_cache_entries=2)
        assert base == system_fingerprint(pipe_small, "multi_solve", wide)
        fields = config_fingerprint_fields(CONFIG)
        assert "n_workers" not in fields
        assert "serve_cache_budget" not in fields
        assert "epsilon" in fields


class TestExactlyOnce:
    def test_concurrent_misses_build_once(self, pipe_small):
        cache = FactorCache(max_entries=2)
        builds = []
        build_lock = threading.Lock()
        gate = threading.Barrier(6)

        def build():
            with build_lock:
                builds.append(threading.get_ident())
            return build_fact(pipe_small)

        results = []

        def worker():
            gate.wait()
            results.append(cache.get_or_build("k", build))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builds) == 1
        entries = {id(r.entry) for r in results}
        assert len(entries) == 1
        assert sum(1 for r in results if not r.hit) == 1
        assert cache.hits == 5 and cache.misses == 1
        cache.clear()
        cache.tracker.assert_all_freed()

    def test_build_failure_propagates_to_waiters(self, pipe_small):
        cache = FactorCache(max_entries=2)
        gate = threading.Barrier(3)
        errors = []

        def build():
            raise ValueError("synthetic build failure")

        def worker():
            gate.wait()
            try:
                cache.get_or_build("bad", build)
            except ValueError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(errors) == 3
        assert len(cache) == 0
        # the key is retryable after a failure
        result = cache.get_or_build("bad", lambda: build_fact(pipe_small))
        assert not result.hit
        cache.clear()
        cache.tracker.assert_all_freed()


class TestLruEviction:
    def test_entry_cap_evicts_lru_order(self, pipe_small):
        cache = FactorCache(max_entries=2)
        cache.get_or_build("a", lambda: build_fact(pipe_small))
        cache.get_or_build("b", lambda: build_fact(pipe_small))
        cache.get_or_build("a", lambda: build_fact(pipe_small))  # touch a
        cache.get_or_build("c", lambda: build_fact(pipe_small))  # evicts b
        assert cache.keys() == ["a", "c"]
        assert cache.lookup("b") is None
        assert cache.evictions == 1
        cache.clear()
        cache.tracker.assert_all_freed()

    def test_budget_evicts_until_admission(self, pipe_small):
        probe = build_fact(pipe_small)
        entry_bytes = probe.peak_bytes
        probe.free()
        # room for exactly two entries
        cache = FactorCache(max_entries=8,
                            budget_bytes=int(2.5 * entry_bytes))
        cache.get_or_build("a", lambda: build_fact(pipe_small))
        cache.get_or_build("b", lambda: build_fact(pipe_small))
        assert cache.tracker.category_in_use(
            FACTOR_CACHE_CATEGORY) == 2 * entry_bytes
        result = cache.get_or_build("c", lambda: build_fact(pipe_small))
        assert result.evictions == 1
        assert cache.keys() == ["b", "c"]
        assert cache.tracker.category_in_use(
            FACTOR_CACHE_CATEGORY) == 2 * entry_bytes
        cache.clear()
        cache.tracker.assert_all_freed()

    def test_oversized_entry_raises_after_evicting_everything(
            self, pipe_small):
        probe = build_fact(pipe_small)
        entry_bytes = probe.peak_bytes
        probe.free()
        cache = FactorCache(max_entries=8,
                            budget_bytes=max(1, entry_bytes // 2))
        with pytest.raises(MemoryLimitExceeded):
            cache.get_or_build("huge", lambda: build_fact(pipe_small))
        assert len(cache) == 0
        cache.tracker.assert_all_freed()

    def test_evicted_entry_is_freed(self, pipe_small):
        cache = FactorCache(max_entries=1)
        first = cache.get_or_build("a", lambda: build_fact(pipe_small))
        cache.get_or_build("b", lambda: build_fact(pipe_small))
        with pytest.raises(FactorizationFreed):
            first.entry.solve(pipe_small.b_v, pipe_small.b_s)
        cache.clear()
        cache.tracker.assert_all_freed()

    def test_tracker_charges_match_entry_peaks_exactly(self, pipe_small):
        cache = FactorCache(max_entries=4)
        r1 = cache.get_or_build("a", lambda: build_fact(pipe_small))
        r2 = cache.get_or_build("b", lambda: build_fact(pipe_small))
        expected = r1.entry.peak_bytes + r2.entry.peak_bytes
        assert cache.tracker.in_use == expected
        assert cache.tracker.category_in_use(
            FACTOR_CACHE_CATEGORY) == expected
        cache.evict("a")
        assert cache.tracker.in_use == r2.entry.peak_bytes
        cache.clear()
        assert cache.tracker.in_use == 0
        cache.tracker.assert_all_freed()


class TestSolutionIdentity:
    def test_hit_and_miss_solutions_are_byte_identical(self, pipe_small):
        """The cached entry must be indistinguishable from a fresh build."""
        cache = FactorCache(max_entries=2)
        miss = cache.get_or_build("k", lambda: build_fact(pipe_small))
        x_miss = miss.entry.solve(pipe_small.b_v, pipe_small.b_s)
        hit = cache.get_or_build("k", lambda: build_fact(pipe_small))
        assert hit.hit
        x_hit = hit.entry.solve(pipe_small.b_v, pipe_small.b_s)
        fresh = build_fact(pipe_small)
        x_fresh = fresh.solve(pipe_small.b_v, pipe_small.b_s)
        fresh.free()
        np.testing.assert_array_equal(x_hit[0], x_miss[0])
        np.testing.assert_array_equal(x_hit[1], x_miss[1])
        np.testing.assert_array_equal(x_hit[0], x_fresh[0])
        np.testing.assert_array_equal(x_hit[1], x_fresh[1])
        cache.clear()
        cache.tracker.assert_all_freed()


class TestDisabledMode:
    def test_disabled_cache_always_builds(self, pipe_small):
        cache = FactorCache(max_entries=2, enabled=False)
        r1 = cache.get_or_build("k", lambda: build_fact(pipe_small))
        r2 = cache.get_or_build("k", lambda: build_fact(pipe_small))
        assert not r1.hit and not r2.hit
        assert r1.key != r2.key  # salted keys never collide
        assert cache.lookup(r1.key) is r1.entry  # key-based solves work
        assert cache.misses == 2 and cache.hits == 0
        cache.clear()
        cache.tracker.assert_all_freed()
