"""Tests for fill-reducing orderings and partition trees."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fembem.fem import assemble_fem_matrix
from repro.fembem.mesh import StructuredGrid
from repro.sparse.ordering import (
    geometric_nested_dissection,
    graph_nested_dissection,
    minimum_degree_ordering,
    rcm_ordering,
    symmetrized_pattern,
)
from repro.sparse.partition import PartitionNode, PartitionTree
from repro.utils.errors import ConfigurationError


@pytest.fixture(scope="module")
def grid_problem():
    grid = StructuredGrid(8, 7, 6)
    a = assemble_fem_matrix(grid, mode="real_spd")
    return grid, a


class TestSymmetrizedPattern:
    def test_symmetric_no_diagonal(self):
        a = sp.csr_matrix(np.array([[1.0, 2.0, 0], [0, 3.0, 0], [4.0, 0, 5.0]]))
        p = symmetrized_pattern(a)
        assert (p - p.T).nnz == 0
        assert p.diagonal().sum() == 0
        # (0,1) from a, (1,0) from transpose; (0,2)/(2,0) likewise
        assert p[0, 1] and p[1, 0] and p[0, 2] and p[2, 0]

    def test_non_square_rejected(self):
        with pytest.raises(ConfigurationError):
            symmetrized_pattern(sp.csr_matrix((2, 3)))


class TestGeometricND:
    def test_perm_is_permutation(self, grid_problem):
        grid, a = grid_problem
        tree = geometric_nested_dissection(a, grid.points(), leaf_size=30)
        np.testing.assert_array_equal(np.sort(tree.perm),
                                      np.arange(a.shape[0]))

    def test_separator_property_holds(self, grid_problem):
        grid, a = grid_problem
        tree = geometric_nested_dissection(a, grid.points(), leaf_size=30)
        tree.validate_separators(symmetrized_pattern(a))  # raises on failure

    def test_postorder_children_before_parents(self, grid_problem):
        grid, a = grid_problem
        tree = geometric_nested_dissection(a, grid.points(), leaf_size=30)
        for node in tree.postorder:
            for child in node.children:
                assert child.index < node.index

    def test_leaf_size_bounds_leaves(self, grid_problem):
        grid, a = grid_problem
        tree = geometric_nested_dissection(a, grid.points(), leaf_size=25)
        for node in tree.postorder:
            if node.is_leaf:
                assert len(node.own) <= 25

    def test_coords_length_mismatch_rejected(self, grid_problem):
        _, a = grid_problem
        with pytest.raises(ConfigurationError):
            geometric_nested_dissection(a, np.zeros((3, 3)))

    def test_elim_pos_is_inverse_of_perm(self, grid_problem):
        grid, a = grid_problem
        tree = geometric_nested_dissection(a, grid.points(), leaf_size=30)
        np.testing.assert_array_equal(tree.elim_pos[tree.perm],
                                      np.arange(tree.n))


class TestGraphND:
    def test_perm_and_separators(self, grid_problem):
        _, a = grid_problem
        tree = graph_nested_dissection(a, leaf_size=30)
        np.testing.assert_array_equal(np.sort(tree.perm),
                                      np.arange(a.shape[0]))
        tree.validate_separators(symmetrized_pattern(a))

    def test_disconnected_graph(self):
        a = sp.block_diag([
            sp.eye(40) + sp.diags(np.ones(39), 1) + sp.diags(np.ones(39), -1),
            sp.eye(30) + sp.diags(np.ones(29), 1) + sp.diags(np.ones(29), -1),
        ]).tocsr()
        tree = graph_nested_dissection(a, leaf_size=8)
        np.testing.assert_array_equal(np.sort(tree.perm), np.arange(70))
        tree.validate_separators(symmetrized_pattern(a))


class TestAmalgamation:
    def test_amalgamated_tree_still_valid(self, grid_problem):
        grid, a = grid_problem
        tree = geometric_nested_dissection(a, grid.points(), leaf_size=20)
        merged = tree.amalgamated(min_own=16)
        np.testing.assert_array_equal(np.sort(merged.perm),
                                      np.arange(a.shape[0]))
        merged.validate_separators(symmetrized_pattern(a))

    def test_amalgamation_reduces_node_count(self, grid_problem):
        grid, a = grid_problem
        tree = geometric_nested_dissection(a, grid.points(), leaf_size=10)
        merged = tree.amalgamated(min_own=40)
        assert merged.n_nodes < tree.n_nodes


class TestPartitionTree:
    def test_overlapping_ownership_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionTree(
                PartitionNode(np.array([0, 1]),
                              [PartitionNode(np.array([1, 2]))]),
                n=3,
            )

    def test_incomplete_cover_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionTree(PartitionNode(np.array([0, 1])), n=3)

    def test_validate_catches_bad_separator(self):
        # a path graph split without a separator violates the property
        n = 6
        a = sp.diags([np.ones(n - 1), np.ones(n - 1)], [-1, 1]).tocsr()
        bad = PartitionTree(
            PartitionNode(
                np.empty(0, dtype=np.intp),
                [PartitionNode(np.arange(3)), PartitionNode(np.arange(3, 6))],
            ),
            n=n,
        )
        with pytest.raises(ConfigurationError):
            bad.validate_separators(symmetrized_pattern(a))

    def test_node_of_variable(self, grid_problem):
        grid, a = grid_problem
        tree = geometric_nested_dissection(a, grid.points(), leaf_size=30)
        owner = tree.node_of_variable()
        for node in tree.postorder:
            assert (owner[node.own] == node.index).all()


class TestClassicOrderings:
    def test_rcm_reduces_bandwidth(self, grid_problem):
        _, a = grid_problem
        # scramble, then check RCM recovers a small bandwidth
        rng = np.random.default_rng(0)
        p = rng.permutation(a.shape[0])
        scrambled = a[p][:, p].tocsr()
        perm = rcm_ordering(scrambled)
        reordered = scrambled[perm][:, perm].tocoo()
        bw_before = np.abs(scrambled.tocoo().row - scrambled.tocoo().col).max()
        bw_after = np.abs(reordered.row - reordered.col).max()
        assert bw_after < bw_before

    def test_minimum_degree_is_permutation(self):
        grid = StructuredGrid(5, 4, 3)
        a = assemble_fem_matrix(grid, mode="real_spd", stencil="7pt")
        perm = minimum_degree_ordering(a)
        np.testing.assert_array_equal(np.sort(perm), np.arange(a.shape[0]))

    def test_minimum_degree_beats_natural_order_fill(self):
        """Greedy min-degree produces less Cholesky fill than natural order."""
        grid = StructuredGrid(6, 5, 1)
        a = assemble_fem_matrix(grid, mode="real_spd", stencil="7pt")
        dense = a.toarray()

        def fill(perm):
            m = dense[np.ix_(perm, perm)]
            l = np.linalg.cholesky(m)
            return (np.abs(l) > 1e-12).sum()

        natural = fill(np.arange(a.shape[0]))
        md = fill(minimum_degree_ordering(a))
        assert md <= natural
