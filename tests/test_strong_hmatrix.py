"""Tests for the strong-admissibility ℋ-matrix format."""

import numpy as np
import pytest

from repro.fembem.bem import make_surface_operator
from repro.fembem.mesh import box_surface_points
from repro.hmatrix import (
    build_cluster_tree,
    build_hodlr,
    build_strong_hmatrix,
    is_admissible,
)
from repro.utils.errors import ConfigurationError


@pytest.fixture(scope="module")
def setup():
    pts = box_surface_points((10.0, 3.0, 3.0), 500, seed=9)
    tree = build_cluster_tree(pts, leaf_size=40)
    op = make_surface_operator(pts, kind="laplace")
    return pts, tree, op, op.to_dense()


class TestAdmissibility:
    def test_disjoint_separated_boxes_admissible(self, setup):
        _, tree, _, _ = setup
        root = tree.root
        # grandchildren on opposite ends of the long axis are separated
        assert not root.is_leaf
        left = root.children[0]
        right = root.children[1]
        while not left.is_leaf:
            left = left.children[0]
        while not right.is_leaf:
            right = right.children[-1]
        assert is_admissible(left, right, eta=2.0)

    def test_touching_boxes_not_admissible(self, setup):
        _, tree, _, _ = setup
        c1, c2 = tree.root.children
        # sibling halves touch: distance ~0
        assert not is_admissible(c1, c2, eta=0.1) or c1.distance_to(c2) > 0

    def test_self_block_never_admissible(self, setup):
        _, tree, _, _ = setup
        assert not is_admissible(tree.root, tree.root, eta=100.0)


class TestAssembly:
    def test_accuracy(self, setup):
        _, tree, op, dense = setup
        hm = build_strong_hmatrix(op, tree, tol=1e-7, eta=2.0)
        err = np.abs(hm.to_dense() - dense).max()
        assert err < 1e-5 * np.abs(dense).max()

    def test_matvec_matches_dense(self, setup, rng):
        _, tree, op, dense = setup
        hm = build_strong_hmatrix(op, tree, tol=1e-8, eta=2.0)
        x = rng.standard_normal((dense.shape[0], 3))
        np.testing.assert_allclose(hm.matvec(x), dense @ x, rtol=1e-5,
                                   atol=1e-6)

    def test_bounded_ranks_versus_hodlr(self, setup):
        """The point of strong admissibility: near-field stays dense and
        far-field ranks stay bounded, versus HODLR's growing top ranks."""
        _, tree, op, _ = setup
        strong = build_strong_hmatrix(op, tree, tol=1e-6, eta=2.0)
        hodlr = build_hodlr(op, tree, tol=1e-6)
        assert strong.max_rank() < hodlr.max_rank()

    def test_block_counts_structure(self, setup):
        _, tree, op, _ = setup
        hm = build_strong_hmatrix(op, tree, tol=1e-4, eta=2.0)
        counts = hm.block_counts()
        assert counts["rk"] > 0
        assert counts["dense"] > 0

    def test_eta_controls_near_field_size(self, setup):
        """Larger η admits block pairs earlier (weaker criterion), so less
        of the matrix is stored as dense near-field."""
        _, tree, op, _ = setup

        def dense_bytes(hm):
            total = 0

            def walk(node):
                nonlocal total
                if node.kind == "dense":
                    total += node.dense.nbytes
                for c in node.children:
                    walk(c)

            walk(hm.root)
            return total

        tight = build_strong_hmatrix(op, tree, tol=1e-5, eta=0.5)
        loose = build_strong_hmatrix(op, tree, tol=1e-5, eta=4.0)
        assert dense_bytes(loose) < dense_bytes(tight)

    def test_dimension_checks(self, setup, rng):
        _, tree, op, _ = setup
        hm = build_strong_hmatrix(op, tree, tol=1e-4)
        with pytest.raises(ConfigurationError):
            hm.matvec(np.zeros(3))
        with pytest.raises(ConfigurationError):
            build_strong_hmatrix(op, tree, tol=1e-4, eta=0.0)

    def test_nbytes_positive_and_consistent(self, setup):
        _, tree, op, _ = setup
        hm = build_strong_hmatrix(op, tree, tol=1e-4)
        assert 0 < hm.nbytes() <= hm.dense_nbytes() * 1.2
        assert hm.compression_ratio() == pytest.approx(
            hm.nbytes() / hm.dense_nbytes()
        )

    def test_complex_kernel(self, setup, rng):
        pts, tree, _, _ = setup
        op = make_surface_operator(pts, kind="helmholtz", wavenumber=0.5)
        dense = op.to_dense()
        hm = build_strong_hmatrix(op, tree, tol=1e-7, eta=2.0)
        x = rng.standard_normal(len(pts)) + 1j * rng.standard_normal(len(pts))
        np.testing.assert_allclose(hm.matvec(x), dense @ x, rtol=1e-5,
                                   atol=1e-6)
