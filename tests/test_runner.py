"""Tests for the experiment harness (quick, reduced-size runs)."""

import pytest

from repro.runner.experiments import (
    run_fig10_fig11,
    run_fig12,
    run_fig13,
    run_table1,
    run_table2,
)
from repro.runner.reporting import (
    render_fig10,
    render_fig11,
    render_fig12,
    render_fig13,
    render_table,
    render_table1,
    render_table2,
)
from repro.runner.workloads import (
    PIPE_STUDY_SIZES,
    TABLE1_SIZES,
    fig10_config_grid,
    pipe_memory_limit,
    scaled_n,
)


class TestWorkloads:
    def test_scaled_n(self):
        assert scaled_n(1_000_000) == 4_000
        assert scaled_n(9_000_000) == 36_000
        assert scaled_n(1) == 1_000  # floor

    def test_study_sizes_cover_table1(self):
        assert set(TABLE1_SIZES) <= set(PIPE_STUDY_SIZES)

    def test_grid_has_all_couplings(self):
        grid = fig10_config_grid()
        algorithms = {a for a, _ in grid}
        assert algorithms == {
            "baseline", "advanced", "multi_solve", "multi_factorization",
        }
        for configs in grid.values():
            assert configs

    def test_memory_limit_positive(self):
        assert pipe_memory_limit() > 0


class TestTable1:
    def test_rows_match_paper_structure(self):
        rows = run_table1()
        assert len(rows) == 4
        for row in rows:
            assert row["n_bem"] + row["n_fem"] == row["n_total"]
            # the BEM share tracks the paper's N^(2/3) ratio
            assert row["bem_fraction"] < 0.35

    def test_render(self):
        text = render_table1(run_table1())
        assert "n_BEM" in text and "paper n_BEM" in text


class TestFig10Quick:
    @pytest.fixture(scope="class")
    def rows(self):
        grid = {
            ("multi_solve", "spido"): [
                c for c in fig10_config_grid()[("multi_solve", "spido")][:2]
            ],
            ("multi_solve", "hmat"): [
                fig10_config_grid()[("multi_solve", "hmat")][0]
            ],
        }
        return run_fig10_fig11(sizes=[1_200], grid=grid,
                               memory_limit=2 * 1024**3)

    def test_all_cells_present(self, rows):
        assert len(rows) == 2

    def test_feasible_rows_have_metrics(self, rows):
        for row in rows:
            assert row["feasible"]
            assert row["time"] > 0
            assert row["peak_bytes"] > 0
            assert row["relative_error"] < 1e-2

    def test_best_config_recorded(self, rows):
        for row in rows:
            assert "n_c" in row and "coupling" in row

    def test_renderers(self, rows):
        assert "best time" in render_fig10(rows)
        assert "rel. error" in render_fig11(rows)

    def test_oom_cell_reported_infeasible(self):
        grid = {
            ("baseline", "spido"): fig10_config_grid()[("baseline", "spido")]
        }
        rows = run_fig10_fig11(sizes=[1_200], grid=grid,
                               memory_limit=200_000)
        assert len(rows) == 1
        assert not rows[0]["feasible"]
        assert "OOM" in render_fig10(rows)


class TestFig12And13Quick:
    def test_fig12_rows(self):
        rows = run_fig12(n_total=1_200, nc_values=[32, 64], ns_values=[128])
        variants = {r["variant"] for r in rows}
        assert any("SPIDO" in v for v in variants)
        assert any("n_c = n_S" in v for v in variants)
        assert all(r["feasible"] for r in rows)
        text = render_fig12(rows)
        assert "n_S" in text

    def test_fig12_pinned_nc_rows(self):
        rows = run_fig12(n_total=1_200, nc_values=[16], ns_values=[64, 128])
        pinned = [r for r in rows if "n_c = 16" in r["variant"]]
        assert len(pinned) == 2

    def test_fig13_rows(self):
        rows = run_fig13(n_total=1_200, nb_values=[1, 2])
        assert len(rows) == 4  # 2 n_b values x 2 couplings
        nfacts = {
            (r["n_b"], r["variant"]): r["n_sparse_factorizations"]
            for r in rows
        }
        for (n_b, _), count in nfacts.items():
            assert count == n_b * n_b
        assert "factorizations" in render_fig13(rows)


class TestTable2Quick:
    def test_reduced_table2_runs(self):
        rows = run_table2(n_total=1_600, memory_limit=8 * 1024**3,
                          bem_fraction=0.25)
        assert len(rows) == 9
        assert all(r["feasible"] for r in rows)  # generous limit
        # compressed rows store a Schur complement no bigger than dense rows
        dense_s = rows[2]["schur_bytes"]
        comp_s = rows[5]["schur_bytes"]
        assert comp_s <= dense_s * 1.5
        text = render_table2(rows)
        assert "sparse cmp" in text

    def test_table2_oom_rows_under_tight_limit(self):
        rows = run_table2(n_total=1_600, memory_limit=1_000_000,
                          bem_fraction=0.25)
        assert not any(r["feasible"] for r in rows)


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_none_rendered_empty(self):
        text = render_table(["x"], [[None]])
        assert text.splitlines()[-1].strip() == ""
