"""Tests for the CLI entry point and the factorization statistics."""

import pytest

from repro.runner.__main__ import main as runner_main
from repro.sparse import BLRConfig, SparseSolver


class TestStatistics:
    def test_fields_present_and_consistent(self, pipe_small):
        f = SparseSolver().factorize(
            pipe_small.a_vv, coords=pipe_small.coords_v,
            symmetric_values=True,
        )
        stats = f.statistics()
        assert stats["mode"] == "ldlt"
        assert stats["n_fronts"] >= 1
        assert stats["peak_front_size"] >= 1
        assert stats["factor_entries"] > pipe_small.a_vv.nnz / 2
        assert stats["factor_bytes"] == f.factor_bytes
        assert stats["flops_estimate"] > 0
        f.free()

    def test_lu_mode_reported(self, aircraft_small):
        f = SparseSolver().factorize(
            aircraft_small.a_vv, coords=aircraft_small.coords_v,
            symmetric_values=False,
        )
        assert f.statistics()["mode"] == "lu"
        f.free()

    def test_blr_panel_counts(self, pipe_small):
        f = SparseSolver(
            blr=BLRConfig(tol=1e-1, min_panel=16, max_rank_fraction=1.0)
        ).factorize(pipe_small.a_vv, coords=pipe_small.coords_v,
                    symmetric_values=True)
        stats = f.statistics()
        assert 0 < stats["blr_compressed_panels"] <= stats["blr_total_panels"]
        f.free()

    def test_flops_grow_with_problem_size(self):
        from repro.fembem import generate_pipe_case
        small = generate_pipe_case(1_000)
        big = generate_pipe_case(3_000)
        fs = SparseSolver().factorize(small.a_vv, coords=small.coords_v,
                                      symmetric_values=True)
        fb = SparseSolver().factorize(big.a_vv, coords=big.coords_v,
                                      symmetric_values=True)
        assert fb.statistics()["flops_estimate"] > (
            2 * fs.statistics()["flops_estimate"]
        )
        fs.free()
        fb.free()


class TestCli:
    def test_table1(self, capsys):
        assert runner_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "n_BEM" in out and "paper" in out

    def test_fig12_small(self, capsys):
        assert runner_main(["fig12", "--n-total", "1200"]) == 0
        out = capsys.readouterr().out
        assert "n_S" in out

    def test_fig13_small(self, capsys):
        assert runner_main(["fig13", "--n-total", "1200"]) == 0
        out = capsys.readouterr().out
        assert "factorizations" in out

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            runner_main(["nonsense"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            runner_main([])
