"""Tests for the beyond-the-paper multi-factorization extensions."""

import numpy as np

from repro.core import SolverConfig, solve_coupled


class TestDiagonalSymmetryFlag:
    def test_same_solution(self, pipe_medium):
        faithful = solve_coupled(pipe_medium, "multi_factorization",
                                 SolverConfig(n_b=2))
        exploit = solve_coupled(
            pipe_medium, "multi_factorization",
            SolverConfig(n_b=2, mf_exploit_diagonal_symmetry=True),
        )
        np.testing.assert_allclose(faithful.x, exploit.x, atol=1e-8)

    def test_not_applied_to_nonsymmetric_problem(self, aircraft_small):
        # the flag must silently stay off for non-symmetric systems
        sol = solve_coupled(
            aircraft_small, "multi_factorization",
            SolverConfig(n_b=2, epsilon=1e-4,
                         mf_exploit_diagonal_symmetry=True),
        )
        assert sol.relative_error < 1e-4

    def test_diagonal_symmetry_saves_factor_storage(self, pipe_medium):
        """On the i == j blocks the symmetric mode stores one panel set."""
        faithful = solve_coupled(pipe_medium, "multi_factorization",
                                 SolverConfig(n_b=1))
        exploit = solve_coupled(
            pipe_medium, "multi_factorization",
            SolverConfig(n_b=1, mf_exploit_diagonal_symmetry=True),
        )
        # n_b = 1: the single block is diagonal, so the whole factorization
        # switches to LDLᵀ — roughly half the stored panel bytes
        assert exploit.stats.sparse_factor_bytes < (
            0.7 * faithful.stats.sparse_factor_bytes
        )


class TestOutOfCoreModel:
    def test_ooc_moves_schur_to_disk(self):
        from repro.memory.model import CouplingMemoryModel, paper_pipe_dims
        model = CouplingMemoryModel()
        dims = paper_pipe_dims(2_000_000)
        ic = model.peak_components("multi_solve", dims)
        ooc = model.peak_components("multi_solve", dims, out_of_core=True)
        assert "schur_dense" in ic and "schur_dense" not in ooc
        assert ooc["disk:schur_dense"] == ic["schur_dense"]

    def test_ooc_resident_peak_smaller(self):
        from repro.memory.model import CouplingMemoryModel, paper_pipe_dims
        model = CouplingMemoryModel()
        dims = paper_pipe_dims(2_000_000)
        assert model.peak_bytes("multi_solve", dims, out_of_core=True) < (
            model.peak_bytes("multi_solve", dims)
        )

    def test_ooc_extends_capacity(self):
        from repro.memory.model import (
            CouplingMemoryModel,
            predict_max_unknowns,
        )
        model = CouplingMemoryModel()
        limit = 128 * 1024**3
        ic = predict_max_unknowns(model, "multi_solve", limit)
        ooc = predict_max_unknowns(model, "multi_solve", limit,
                                   out_of_core=True)
        assert ooc > 2 * ic
