"""Tests for the multifrontal symbolic analysis."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fembem.fem import assemble_fem_matrix
from repro.fembem.mesh import StructuredGrid
from repro.sparse.ordering import geometric_nested_dissection
from repro.sparse.symbolic import symbolic_analysis
from repro.utils.errors import ConfigurationError


@pytest.fixture(scope="module")
def problem():
    grid = StructuredGrid(7, 6, 5)
    a = assemble_fem_matrix(grid, mode="real_spd")
    tree = geometric_nested_dissection(a, grid.points(), leaf_size=25)
    return grid, a, tree


class TestInteriorOnly:
    def test_root_boundary_empty(self, problem):
        _, a, tree = problem
        sym = symbolic_analysis(a, tree)
        assert sym.fronts[-1].n_bnd == 0

    def test_fronts_cover_all_variables(self, problem):
        _, a, tree = problem
        sym = symbolic_analysis(a, tree)
        owned = np.concatenate([f.own for f in sym.fronts])
        np.testing.assert_array_equal(np.sort(owned), np.arange(a.shape[0]))

    def test_boundaries_sorted_by_elimination_position(self, problem):
        _, a, tree = problem
        sym = symbolic_analysis(a, tree)
        for f in sym.fronts:
            pos = sym.elim_pos[f.bnd]
            assert (np.diff(pos) > 0).all()

    def test_boundary_contains_matrix_neighbours(self, problem):
        """Every later-eliminated neighbour of an owned var is in the front."""
        _, a, tree = problem
        sym = symbolic_analysis(a, tree)
        acsr = a.tocsr()
        for f in sym.fronts[:10]:
            front_vars = set(np.concatenate([f.own, f.bnd]).tolist())
            for v in f.own:
                nbrs = acsr.indices[acsr.indptr[v] : acsr.indptr[v + 1]]
                for w in nbrs:
                    if sym.elim_pos[w] >= sym.elim_pos[v]:
                        assert int(w) in front_vars

    def test_estimates_positive(self, problem):
        _, a, tree = problem
        sym = symbolic_analysis(a, tree)
        assert sym.factor_nnz_estimate() > a.nnz / 2
        assert sym.peak_front_size() >= 1


class TestWithSchur:
    def test_schur_vars_in_root_boundary(self, problem):
        grid, a, tree = problem
        n = a.shape[0]
        k = 30
        coupling = sp.random(k, n, density=0.02, format="csr", random_state=2)
        w = sp.bmat([[a, coupling.T], [coupling, None]], format="csr")
        sym = symbolic_analysis(w, tree, schur_vars=np.arange(n, n + k))
        root_bnd = sym.fronts[-1].bnd
        assert (root_bnd >= n).all()
        assert len(root_bnd) > 0
        assert sym.n_interior == n

    def test_schur_positions_after_interior(self, problem):
        _, a, tree = problem
        n = a.shape[0]
        k = 10
        coupling = sp.random(k, n, density=0.05, format="csr", random_state=3)
        w = sp.bmat([[a, coupling.T], [coupling, None]], format="csr")
        schur = np.arange(n, n + k)
        sym = symbolic_analysis(w, tree, schur_vars=schur)
        assert (sym.elim_pos[schur] >= n).all()

    def test_schur_vars_interleaved_ids(self, problem):
        """Schur variables need not be the trailing ids."""
        _, a, tree = problem
        n = a.shape[0]
        k = 8
        # put the schur variables at the FRONT of the extended matrix
        coupling = sp.random(k, n, density=0.05, format="csr", random_state=4)
        w = sp.bmat([[None, coupling], [coupling.T, a]], format="csr")
        w = w.tolil()
        for i in range(k):
            w[i, i] = 0.0
        w = w.tocsr()
        sym = symbolic_analysis(w, tree, schur_vars=np.arange(k))
        assert sym.n_interior == n
        assert (sym.elim_pos[np.arange(k)] >= n).all()

    def test_duplicate_schur_vars_rejected(self, problem):
        _, a, tree = problem
        n = a.shape[0]
        w = sp.bmat(
            [[a, sp.csr_matrix((n, 2))], [sp.csr_matrix((2, n)), sp.eye(2)]],
            format="csr",
        )
        with pytest.raises(ConfigurationError):
            symbolic_analysis(w, tree, schur_vars=np.array([n, n]))

    def test_tree_size_mismatch_rejected(self, problem):
        _, a, tree = problem
        bigger = sp.block_diag([a, sp.eye(5)]).tocsr()
        with pytest.raises(ConfigurationError):
            symbolic_analysis(bigger, tree)
