"""Tests for the hierarchical LDLᵀ factorization of symmetric HODLR."""

import numpy as np
import pytest

from repro.fembem.bem import make_surface_operator
from repro.fembem.mesh import box_surface_points
from repro.hmatrix import (
    HLDLTFactorization,
    HLUFactorization,
    build_cluster_tree,
    build_hodlr,
    hodlr_from_dense,
)
from repro.utils.errors import SingularMatrixError


@pytest.fixture(scope="module")
def setup():
    pts = box_surface_points((8.0, 2.0, 2.0), 400, seed=13)
    tree = build_cluster_tree(pts, leaf_size=48)
    return pts, tree


class TestSolve:
    def test_real_symmetric_accuracy(self, setup, rng):
        pts, tree = setup
        op = make_surface_operator(pts, kind="laplace")
        dense = op.to_dense()
        f = HLDLTFactorization(build_hodlr(op, tree, tol=1e-9))
        b = rng.standard_normal(len(pts))
        x = f.solve(b)
        assert np.linalg.norm(dense @ x - b) / np.linalg.norm(b) < 1e-7

    def test_complex_symmetric_accuracy(self, setup, rng):
        """Complex *symmetric* (not Hermitian): plain transposes required."""
        pts, tree = setup
        op = make_surface_operator(pts, kind="helmholtz", wavenumber=0.7)
        dense = op.to_dense()
        assert not np.allclose(dense, dense.conj().T)
        f = HLDLTFactorization(build_hodlr(op, tree, tol=1e-9))
        b = rng.standard_normal(len(pts)) + 1j * rng.standard_normal(len(pts))
        x = f.solve(b)
        assert np.linalg.norm(dense @ x - b) / np.linalg.norm(b) < 1e-7

    def test_multiple_rhs(self, setup, rng):
        pts, tree = setup
        op = make_surface_operator(pts)
        dense = op.to_dense()
        f = HLDLTFactorization(build_hodlr(op, tree, tol=1e-9))
        b = rng.standard_normal((len(pts), 4))
        assert np.abs(dense @ f.solve(b) - b).max() < 1e-6

    def test_matches_hlu(self, setup, rng):
        pts, tree = setup
        op = make_surface_operator(pts)
        hm = build_hodlr(op, tree, tol=1e-10)
        b = rng.standard_normal(len(pts))
        x_lu = HLUFactorization(hm).solve(b)
        x_ld = HLDLTFactorization(hm).solve(b)
        np.testing.assert_allclose(x_lu, x_ld, rtol=1e-6, atol=1e-9)

    def test_input_unchanged(self, setup):
        pts, tree = setup
        op = make_surface_operator(pts)
        hm = build_hodlr(op, tree, tol=1e-8)
        before = hm.to_dense()
        HLDLTFactorization(hm)
        np.testing.assert_array_equal(hm.to_dense(), before)

    def test_singular_raises(self, setup):
        _, tree = setup
        hm = hodlr_from_dense(np.zeros((tree.n, tree.n)), tree, tol=1e-8)
        with pytest.raises(SingularMatrixError):
            HLDLTFactorization(hm)


class TestStorage:
    def test_half_the_bytes_of_hlu(self, setup):
        """The paper's symmetric-mode saving: one coupling factor set and
        packed leaf triangles instead of two panels and full LU leaves."""
        pts, tree = setup
        op = make_surface_operator(pts)
        hm = build_hodlr(op, tree, tol=1e-8)
        lu_bytes = HLUFactorization(hm).nbytes()
        ldlt_bytes = HLDLTFactorization(hm).nbytes()
        assert ldlt_bytes < 0.65 * lu_bytes

    def test_d_entries_nonzero(self, setup):
        pts, tree = setup
        op = make_surface_operator(pts)
        f = HLDLTFactorization(build_hodlr(op, tree, tol=1e-8))
        assert np.abs(f.d).min() > 0


class TestContainerIntegration:
    def test_symmetric_problem_uses_ldlt(self, pipe_small):
        from repro.core.config import SolverConfig
        from repro.core.schur_tools import HodlrSchurContainer
        from repro.hmatrix.ldlt_factorization import HLDLTFactorization
        from repro.memory import MemoryTracker

        t = MemoryTracker()
        c = HodlrSchurContainer(pipe_small,
                                SolverConfig(dense_backend="hmat"), t)
        c.factorize(t)
        assert isinstance(c._fact, HLDLTFactorization)
        c.free()
        t.assert_all_freed()

    def test_nonsymmetric_problem_uses_lu(self, aircraft_small):
        from repro.core.config import SolverConfig
        from repro.core.schur_tools import HodlrSchurContainer
        from repro.hmatrix import HLUFactorization
        from repro.memory import MemoryTracker

        t = MemoryTracker()
        c = HodlrSchurContainer(
            aircraft_small,
            SolverConfig(dense_backend="hmat", epsilon=1e-4), t,
        )
        c.factorize(t)
        assert isinstance(c._fact, HLUFactorization)
        c.free()
        t.assert_all_freed()
