"""Integration tests on the complex non-symmetric industrial case."""

import numpy as np
import pytest

from repro.core import SolverConfig, solve_coupled

EPS = 1e-4
UNCOMPRESSED = SolverConfig(dense_backend="spido", n_c=64, n_b=2, epsilon=EPS)
COMPRESSED = SolverConfig(dense_backend="hmat", n_c=64, n_s_block=128,
                          n_b=2, epsilon=EPS)


class TestComplexNonsymmetric:
    def test_problem_is_complex_nonsymmetric(self, aircraft_small):
        assert np.issubdtype(aircraft_small.dtype, np.complexfloating)
        assert not aircraft_small.symmetric

    @pytest.mark.parametrize("algorithm", [
        "baseline", "advanced", "multi_solve", "multi_factorization",
    ])
    def test_uncompressed_accurate(self, aircraft_small, algorithm):
        sol = solve_coupled(aircraft_small, algorithm, UNCOMPRESSED)
        assert sol.relative_error < 1e-4

    @pytest.mark.parametrize("algorithm",
                             ["multi_solve", "multi_factorization"])
    def test_compressed_below_epsilon(self, aircraft_small, algorithm):
        sol = solve_coupled(aircraft_small, algorithm, COMPRESSED)
        assert sol.relative_error < EPS

    def test_solution_is_complex(self, aircraft_small):
        sol = solve_coupled(aircraft_small, "multi_solve", COMPRESSED)
        assert np.issubdtype(sol.x_v.dtype, np.complexfloating)
        assert np.abs(sol.x.imag).max() > 0

    def test_algorithms_agree(self, aircraft_small):
        a = solve_coupled(aircraft_small, "multi_solve", UNCOMPRESSED)
        b = solve_coupled(aircraft_small, "multi_factorization", UNCOMPRESSED)
        # both within the BLR tolerance of the exact solution, hence of
        # each other (multi-solve routes the BLR error through the solve
        # panels, multi-factorization through the Schur blocks)
        np.testing.assert_allclose(a.x, b.x, atol=2e-5)

    def test_unsymmetric_mode_duplicates_factor_storage(self, aircraft_small):
        """Multi-factorization pays the paper's duplicated-storage cost:
        its per-call factor (unsymmetric W) is larger than multi-solve's
        factor of A_vv alone."""
        ms = solve_coupled(aircraft_small, "multi_solve", UNCOMPRESSED)
        mf = solve_coupled(aircraft_small, "multi_factorization",
                           UNCOMPRESSED)
        assert mf.stats.sparse_factor_bytes > ms.stats.sparse_factor_bytes

    def test_compressed_store_overhead_bounded(self, aircraft_small):
        """At this tiny surface size (n_bem < 500) the oscillatory complex
        kernel's ranks are too high for HODLR to win outright at the tight
        internal tolerance — the genuine shrink is asserted on the pipe
        case and on the full-size industrial bench (Table II).  Here we
        only require the compressed store not to blow up."""
        dense = solve_coupled(aircraft_small, "multi_solve", UNCOMPRESSED)
        comp = solve_coupled(aircraft_small, "multi_solve", COMPRESSED)
        assert comp.stats.schur_bytes < 1.5 * dense.stats.schur_bytes
