"""Additional property-based tests for the sparse solver components."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fembem.fem import assemble_fem_matrix
from repro.fembem.mesh import StructuredGrid
from repro.sparse import BLRConfig, SparseSolver
from repro.sparse.ordering import (
    geometric_nested_dissection,
    graph_nested_dissection,
    symmetrized_pattern,
)


@settings(max_examples=12, deadline=None)
@given(
    nx=st.integers(2, 8), ny=st.integers(2, 6), nz=st.integers(1, 5),
    leaf=st.integers(4, 60),
)
def test_property_geometric_nd_separators(nx, ny, nz, leaf):
    """The geometric ND tree satisfies the separator property on any grid."""
    grid = StructuredGrid(nx, ny, nz)
    a = assemble_fem_matrix(grid, mode="real_spd", stencil="7pt")
    tree = geometric_nested_dissection(a, grid.points(), leaf_size=leaf)
    tree.validate_separators(symmetrized_pattern(a))
    np.testing.assert_array_equal(np.sort(tree.perm), np.arange(a.shape[0]))


@settings(max_examples=8, deadline=None)
@given(
    n=st.integers(20, 200), extra=st.integers(0, 50),
    leaf=st.integers(4, 40), seed=st.integers(0, 100),
)
def test_property_graph_nd_on_random_sparse_graphs(n, extra, leaf, seed):
    """Graph ND handles arbitrary (even disconnected) sparse graphs."""
    rng = np.random.default_rng(seed)
    # a random spanning structure + extra random edges, possibly two
    # disconnected components
    rows, cols = [], []
    half = n // 2 if n >= 40 and seed % 3 == 0 else n
    for block in ((0, half), (half, n)):
        lo, hi = block
        for v in range(lo + 1, hi):
            u = int(rng.integers(lo, v))
            rows += [u, v]
            cols += [v, u]
    for _ in range(extra):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            rows += [int(u), int(v)]
            cols += [int(v), int(u)]
    data = np.ones(len(rows))
    a = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    a = a + sp.identity(n) * 10
    tree = graph_nested_dissection(a, leaf_size=leaf)
    tree.validate_separators(symmetrized_pattern(a))
    np.testing.assert_array_equal(np.sort(tree.perm), np.arange(n))


@settings(max_examples=8, deadline=None)
@given(
    blr_tol=st.floats(1e-10, 1e-1), min_panel=st.integers(4, 64),
    seed=st.integers(0, 50),
)
def test_property_blr_solve_error_bounded(blr_tol, min_panel, seed):
    """BLR at any tolerance keeps the solve residual O(tol)."""
    grid = StructuredGrid(7, 6, 5)
    a = assemble_fem_matrix(grid, mode="real_spd")
    f = SparseSolver(
        blr=BLRConfig(tol=blr_tol, min_panel=min_panel,
                      max_rank_fraction=1.0)
    ).factorize(a, coords=grid.points(), symmetric_values=True)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(a.shape[0])
    x = f.solve(b)
    res = np.linalg.norm(a @ x - b) / np.linalg.norm(b)
    assert res < 50 * blr_tol + 1e-10
    f.free()


@settings(max_examples=10, deadline=None)
@given(k=st.integers(1, 16), n_rhs=st.integers(1, 6),
       seed=st.integers(0, 100))
def test_property_transpose_solve(k, n_rhs, seed):
    """solve_transpose inverts Aᵀ for any unsymmetric system."""
    grid = StructuredGrid(6, 5, 4)
    a = assemble_fem_matrix(grid, mode="complex_nonsym")
    f = SparseSolver().factorize(a, coords=grid.points(),
                                 symmetric_values=False)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((a.shape[0], n_rhs)) * k
    x = f.solve_transpose(b)
    assert np.abs(a.T @ x - b).max() < 1e-8 * k
    f.free()
