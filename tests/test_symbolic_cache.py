"""Symbolic-analysis reuse and the frontal workspace arena.

Covers the :class:`repro.sparse.SymbolicCache` machinery end to end: the
pattern fingerprint (values must not participate), the thread-safe
exactly-once build, the border extension grafting a Schur border onto a
cached interior analysis (bit-identical to the full analysis), the arena
lifecycle with tracker accounting, and the bit-identity of
multi-factorization solutions with reuse on/off across worker counts.

This module runs under the lock-order watchdog + tracker-balance recorder
(see ``conftest.py``), so every test doubles as a runtime check that the
cache and arena locks stay acyclic and every tracked byte is released.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.api import solve_coupled
from repro.core.config import SolverConfig
from repro.memory.tracker import MemoryTracker
from repro.sparse import (
    REUSE_ANALYSIS_ENV,
    FrontArena,
    SparseSolver,
    SymbolicCache,
    pattern_fingerprint,
    resolve_reuse_analysis,
)


def _coupled_w(problem):
    """The paper's ``W`` layout: interior block first, Schur border last."""
    n_v, n_s = problem.n_fem, problem.n_bem
    w = sp.bmat(
        [[problem.a_vv, problem.a_sv.T], [problem.a_sv, None]], format="csr"
    )
    return w, np.arange(n_v, n_v + n_s)


class TestPatternFingerprint:
    def test_values_do_not_participate(self, pipe_small):
        a = pipe_small.a_vv.tocsr()
        b = a.copy()
        b.data = b.data * 2.0
        assert pattern_fingerprint(a) == pattern_fingerprint(b)

    def test_pattern_change_changes_key(self, pipe_small):
        a = pipe_small.a_vv.tocsr()
        b = a.tolil()
        b[0, a.shape[1] - 1] = 1.0
        b[a.shape[1] - 1, 0] = 1.0
        assert pattern_fingerprint(a) != pattern_fingerprint(b.tocsr())

    def test_index_width_is_canonicalised(self):
        a = sp.eye(8, format="csr")
        b = a.copy()
        b.indptr = b.indptr.astype(np.int64)
        b.indices = b.indices.astype(np.int64)
        assert pattern_fingerprint(a) == pattern_fingerprint(b)

    def test_extra_context_changes_key(self):
        a = sp.eye(8, format="csr")
        assert pattern_fingerprint(a) != pattern_fingerprint(a, extra=b"x")


class TestResolveReuseAnalysis:
    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv(REUSE_ANALYSIS_ENV, "0")
        assert resolve_reuse_analysis(True) is True
        monkeypatch.setenv(REUSE_ANALYSIS_ENV, "1")
        assert resolve_reuse_analysis(False) is False

    def test_env_fallback(self, monkeypatch):
        for spelling in ("0", "false", "OFF", "no"):
            monkeypatch.setenv(REUSE_ANALYSIS_ENV, spelling)
            assert resolve_reuse_analysis(None) is False
        for spelling in ("1", "true", "ON", "yes"):
            monkeypatch.setenv(REUSE_ANALYSIS_ENV, spelling)
            assert resolve_reuse_analysis(None) is True

    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv(REUSE_ANALYSIS_ENV, raising=False)
        assert resolve_reuse_analysis(None) is True

    def test_junk_env_raises(self, monkeypatch):
        monkeypatch.setenv(REUSE_ANALYSIS_ENV, "maybe")
        with pytest.raises(ValueError, match="boolean-ish"):
            resolve_reuse_analysis(None)

    def test_config_property(self, monkeypatch):
        monkeypatch.delenv(REUSE_ANALYSIS_ENV, raising=False)
        assert SolverConfig().effective_reuse_analysis is True
        assert SolverConfig(
            reuse_analysis=False
        ).effective_reuse_analysis is False
        monkeypatch.setenv(REUSE_ANALYSIS_ENV, "0")
        assert SolverConfig().effective_reuse_analysis is False


class TestSymbolicCache:
    def test_hit_miss_accounting(self):
        cache = SymbolicCache()
        entry, hit = cache.get_or_build("k", lambda: object())
        assert not hit
        again, hit = cache.get_or_build("k", lambda: object())
        assert hit and again is entry
        assert (cache.misses, cache.hits, len(cache)) == (1, 1, 1)
        cache.clear()
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = SymbolicCache(max_entries=2)
        cache.get_or_build("a", lambda: "A")
        cache.get_or_build("b", lambda: "B")
        cache.get_or_build("a", lambda: "A")   # refresh a
        cache.get_or_build("c", lambda: "C")   # evicts b
        assert len(cache) == 2
        _, hit = cache.get_or_build("b", lambda: "B2")
        assert not hit

    def test_concurrent_first_touch_builds_exactly_once(self):
        cache = SymbolicCache()
        builds = []

        def build():
            builds.append(threading.get_ident())
            return object()

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(
                    cache.get_or_build("k", build)[0]
                )
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builds) == 1
        assert all(r is results[0] for r in results)


class TestSolverCacheIntegration:
    def test_extension_matches_full_analysis_bitwise(self, pipe_small):
        w, schur_vars = _coupled_w(pipe_small)
        kwargs = dict(
            coords_interior=pipe_small.coords_v, symmetric_values=True
        )
        plain = SparseSolver().factorize_schur(w, schur_vars, **kwargs)
        cached = SparseSolver(
            symbolic_cache=SymbolicCache()
        ).factorize_schur(w, schur_vars, **kwargs)
        assert np.array_equal(plain.schur, cached.schur)

    def test_same_pattern_hits(self, pipe_small):
        w, schur_vars = _coupled_w(pipe_small)
        solver = SparseSolver(symbolic_cache=SymbolicCache())
        mf1 = solver.factorize_schur(
            w, schur_vars, coords_interior=pipe_small.coords_v,
            symmetric_values=True,
        )
        mf2 = solver.factorize_schur(
            w, schur_vars, coords_interior=pipe_small.coords_v,
            symmetric_values=True,
        )
        assert (solver.n_symbolic_analyses, solver.n_symbolic_reuses) == (1, 1)
        assert np.array_equal(mf1.schur, mf2.schur)

    def test_value_change_hits_but_redoes_numeric(self, pipe_small):
        w, schur_vars = _coupled_w(pipe_small)
        scaled = w.copy()
        scaled.data = scaled.data * 2.0
        solver = SparseSolver(symbolic_cache=SymbolicCache())
        mf1 = solver.factorize_schur(
            w, schur_vars, coords_interior=pipe_small.coords_v,
            symmetric_values=True,
        )
        mf2 = solver.factorize_schur(
            scaled, schur_vars, coords_interior=pipe_small.coords_v,
            symmetric_values=True,
        )
        # symbolic reused, numeric genuinely recomputed on the new values
        assert (solver.n_symbolic_analyses, solver.n_symbolic_reuses) == (1, 1)
        assert np.array_equal(mf2.schur, 2.0 * mf1.schur)

    def test_pattern_change_misses(self, pipe_small):
        w, schur_vars = _coupled_w(pipe_small)
        n_int = pipe_small.n_fem
        bumped = w.tolil()
        # add a symmetric interior coupling that the pattern did not have
        bumped[0, n_int - 1] = 1e-3
        bumped[n_int - 1, 0] = 1e-3
        solver = SparseSolver(symbolic_cache=SymbolicCache())
        solver.factorize_schur(
            w, schur_vars, coords_interior=pipe_small.coords_v,
            symmetric_values=True,
        )
        solver.factorize_schur(
            bumped.tocsr(), schur_vars,
            coords_interior=pipe_small.coords_v, symmetric_values=True,
        )
        assert (solver.n_symbolic_analyses, solver.n_symbolic_reuses) == (2, 0)

    def test_timer_splits_analysis_from_numeric(self, pipe_small):
        from repro.utils.timer import PhaseTimer

        timer = PhaseTimer()
        solver = SparseSolver(symbolic_cache=SymbolicCache())
        solver.factorize(
            pipe_small.a_vv, coords=pipe_small.coords_v,
            symmetric_values=True, timer=timer,
        )
        phases = timer.phases
        assert phases.get("sparse_analysis", 0.0) > 0.0
        assert phases.get("sparse_numeric", 0.0) > 0.0


class TestFrontArena:
    def test_frames_are_zeroed_and_recycled(self):
        tracker = MemoryTracker()
        arena = FrontArena(tracker)
        f1 = arena.frame(8, np.float64)
        assert f1.shape == (8, 8) and not f1.any()
        f1[:] = 7.0
        f2 = arena.frame(4, np.float64)
        # same storage, rezeroed
        assert not f2.any()
        assert arena.capacity == 64
        arena.free()

    def test_tracker_charged_once_and_follows_growth(self):
        tracker = MemoryTracker()
        arena = FrontArena(tracker)
        arena.ensure(16, np.float64)
        assert arena.nbytes == 16 * 16 * 8
        assert tracker.in_use == arena.nbytes
        arena.ensure(4, np.float64)   # shrinking keeps capacity
        assert tracker.in_use == 16 * 16 * 8
        arena.ensure(32, np.float64)
        assert tracker.in_use == 32 * 32 * 8
        arena.reset()                  # reset keeps capacity and charge
        assert tracker.in_use == 32 * 32 * 8
        arena.free()
        assert tracker.in_use == 0

    def test_dtype_switch_reallocates(self):
        arena = FrontArena(MemoryTracker())
        arena.ensure(8, np.float64)
        f = arena.frame(8, np.complex128)
        assert f.dtype == np.complex128
        arena.free()

    def test_use_after_free_raises(self):
        arena = FrontArena(MemoryTracker())
        arena.free()
        arena.free()   # idempotent
        with pytest.raises(RuntimeError, match="freed"):
            arena.frame(4, np.float64)
        with pytest.raises(RuntimeError, match="freed"):
            arena.reset()

    def test_shared_arena_keeps_factorizations_correct(self, pipe_small):
        # two sequential factorizations through one arena must not alias
        tracker = MemoryTracker()
        arena = FrontArena(tracker)
        solver = SparseSolver(
            tracker=tracker, symbolic_cache=SymbolicCache()
        )
        mf1 = solver.factorize(
            pipe_small.a_vv, coords=pipe_small.coords_v,
            symmetric_values=True, arena=arena,
        )
        mf2 = solver.factorize(
            pipe_small.a_vv, coords=pipe_small.coords_v,
            symmetric_values=True, arena=arena,
        )
        rhs = np.linspace(-1.0, 1.0, pipe_small.n_fem)
        x1 = mf1.solve(rhs)
        x2 = mf2.solve(rhs)
        assert np.array_equal(x1, x2)
        arena.free()


class TestMultiFactorizationReuse:
    @pytest.mark.parametrize("n_workers", [1, 4])
    def test_bit_identical_across_reuse_and_workers(
        self, pipe_small, n_workers
    ):
        config = SolverConfig(n_b=2, n_c=64, n_workers=n_workers)
        on = solve_coupled(
            pipe_small, "multi_factorization",
            config.with_(reuse_analysis=True),
        )
        off = solve_coupled(
            pipe_small, "multi_factorization",
            config.with_(reuse_analysis=False),
        )
        assert np.array_equal(on.x, off.x)
        n_blocks = config.n_b ** 2
        from repro.runtime import resolve_runtime_backend

        if resolve_runtime_backend(None) == "process" and n_workers > 1:
            # the symbolic cache is per-process on the process backend, so
            # the first block of *each worker* analyses; reuse still covers
            # every further block a worker factorizes
            assert 1 <= on.stats.n_symbolic_analyses <= n_workers
            assert (on.stats.n_symbolic_analyses + on.stats.n_symbolic_reuses
                    == n_blocks)
        else:
            assert on.stats.n_symbolic_analyses == 1
            assert on.stats.n_symbolic_reuses == n_blocks - 1
        assert off.stats.n_symbolic_analyses == n_blocks
        assert off.stats.n_symbolic_reuses == 0
        assert on.stats.params["reuse_analysis"] is True
        assert off.stats.params["reuse_analysis"] is False

    def test_phase_split_is_reported(self, pipe_small):
        sol = solve_coupled(
            pipe_small, "multi_factorization",
            SolverConfig(n_b=2, n_c=64, reuse_analysis=True),
        )
        assert sol.stats.phases.get("sparse_analysis", 0.0) > 0.0
        assert sol.stats.phases.get("sparse_numeric", 0.0) > 0.0
