"""Tests for structured grids and boundary point sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fembem.mesh import (
    StructuredGrid,
    box_surface_points,
    nearly_square_box_dims,
)
from repro.utils.errors import ConfigurationError


class TestStructuredGrid:
    def test_point_count_and_shape(self):
        g = StructuredGrid(4, 3, 2)
        assert g.n_points == 24
        assert g.points().shape == (24, 3)

    def test_linear_index_matches_points_order(self):
        g = StructuredGrid(3, 4, 5, spacing=0.5, origin=(1.0, 2.0, 3.0))
        pts = g.points()
        idx = g.linear_index(2, 1, 3)
        np.testing.assert_allclose(
            pts[idx], [1.0 + 2 * 0.5, 2.0 + 1 * 0.5, 3.0 + 3 * 0.5]
        )

    def test_boundary_mask_counts_shell(self):
        g = StructuredGrid(4, 4, 4)
        mask = g.boundary_mask()
        assert mask.sum() == 4**3 - 2**3  # outer shell of a 4x4x4 grid

    def test_boundary_mask_all_for_thin_grid(self):
        g = StructuredGrid(1, 5, 5)
        assert g.boundary_mask().all()

    def test_extent(self):
        g = StructuredGrid(5, 3, 2, spacing=2.0)
        np.testing.assert_allclose(g.extent(), [8.0, 4.0, 2.0])

    def test_invalid_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            StructuredGrid(0, 2, 2)
        with pytest.raises(ConfigurationError):
            StructuredGrid(2, 2, 2, spacing=0.0)


class TestBoxSurfacePoints:
    def test_exact_count(self):
        for n in [6, 17, 100, 999]:
            pts = box_surface_points((4.0, 2.0, 1.0), n, seed=1)
            assert pts.shape == (n, 3)

    def test_points_lie_on_faces(self):
        ext = (4.0, 2.0, 1.0)
        pts = box_surface_points(ext, 300, offset=0.0, seed=2)
        on_face = np.zeros(len(pts), dtype=bool)
        for axis, length in enumerate(ext):
            on_face |= np.isclose(pts[:, axis], 0.0)
            on_face |= np.isclose(pts[:, axis], length)
        assert on_face.all()

    def test_offset_pushes_points_outward(self):
        ext = (2.0, 2.0, 2.0)
        pts = box_surface_points(ext, 200, offset=0.3, seed=3)
        outside = (
            (pts < -1e-9).any(axis=1) | (pts > np.array(ext) + 1e-9).any(axis=1)
        )
        assert outside.all()

    def test_deterministic_for_same_seed(self):
        a = box_surface_points((3.0, 1.0, 1.0), 123, seed=9)
        b = box_surface_points((3.0, 1.0, 1.0), 123, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_differs(self):
        a = box_surface_points((3.0, 1.0, 1.0), 123, seed=9)
        b = box_surface_points((3.0, 1.0, 1.0), 123, seed=10)
        assert not np.array_equal(a, b)

    def test_too_few_points_rejected(self):
        with pytest.raises(ConfigurationError):
            box_surface_points((1.0, 1.0, 1.0), 5)

    def test_origin_shift(self):
        a = box_surface_points((1.0, 1.0, 1.0), 50, seed=0)
        b = box_surface_points((1.0, 1.0, 1.0), 50, seed=0,
                               origin=(10.0, 0.0, 0.0))
        np.testing.assert_allclose(b[:, 0] - a[:, 0], 10.0)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(6, 500), seed=st.integers(0, 100))
    def test_property_count_always_exact(self, n, seed):
        pts = box_surface_points((5.0, 2.0, 1.0), n, seed=seed)
        assert len(pts) == n


class TestNearlySquareBoxDims:
    def test_product_close_to_target(self):
        for target in [100, 1000, 8000, 50_000]:
            nx, ny, nz = nearly_square_box_dims(target, aspect=4.0)
            assert ny == nz
            assert 0.7 * target <= nx * ny * nz <= 1.3 * target

    def test_aspect_respected_roughly(self):
        nx, ny, nz = nearly_square_box_dims(32_000, aspect=4.0)
        assert nx > 2 * ny

    def test_small_target_rejected(self):
        with pytest.raises(ConfigurationError):
            nearly_square_box_dims(4)
