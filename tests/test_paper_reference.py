"""Consistency tests for the transcribed paper reference data."""

import pytest

from repro.runner.paper_reference import (
    ADVANCED_REFERENCE_TIMES,
    FIG10_MAX_UNKNOWNS,
    FIG11_EPSILON,
    TABLE1,
    TABLE2,
    TABLE2_N_SURFACE,
    TABLE2_N_VOLUME,
    TABLE2_ORDERINGS,
)


class TestTable1Data:
    def test_four_rows_sum_consistently(self):
        assert len(TABLE1) == 4
        for n, bem, fem in TABLE1:
            assert bem + fem == n

    def test_monotone_sizes(self):
        sizes = [row[0] for row in TABLE1]
        assert sizes == sorted(sizes)

    def test_bem_ratio_constant(self):
        ratios = [bem / n ** (2 / 3) for n, bem, _ in TABLE1]
        assert max(ratios) - min(ratios) < 0.02


class TestFig10Data:
    def test_capacity_ordering(self):
        caps = FIG10_MAX_UNKNOWNS
        assert caps["multi_solve_compressed"] > caps["multi_solve"]
        assert caps["multi_solve"] > caps["multi_factorization"]
        assert caps["multi_factorization"] > caps["advanced"]
        assert caps["advanced"] > caps["advanced_uncompressed"]

    def test_reference_times(self):
        n, t = ADVANCED_REFERENCE_TIMES["advanced"]
        assert n == 1_300_000 and t == 455.0
        n, t = ADVANCED_REFERENCE_TIMES["advanced_uncompressed"]
        assert n == 1_000_000 and t == 917.0

    def test_epsilon(self):
        assert FIG11_EPSILON == 1e-3


class TestTable2Data:
    def test_nine_rows(self):
        assert len(TABLE2) == 9

    def test_compression_progression(self):
        # rows 1-3 uncompressed, 4-5 sparse only, 6-9 both
        assert all(r[0] == "off" and r[1] == "off" for r in TABLE2[:3])
        assert all(r[0] == "on" and r[1] == "off" for r in TABLE2[3:5])
        assert all(r[0] == "on" and r[1] == "on" for r in TABLE2[5:])

    def test_schur_blocks_grow_in_final_rows(self):
        nbs = [r[3] for r in TABLE2[6:]]
        assert nbs == [8, 4, 2]  # halving block count = doubling block size

    def test_orderings_reference_valid_rows(self):
        for a, b, metric in TABLE2_ORDERINGS:
            assert 0 <= a < 9 and 0 <= b < 9
            assert metric in ("time", "ram")

    def test_industrial_unknown_counts(self):
        assert TABLE2_N_VOLUME == 2_090_638
        assert TABLE2_N_SURFACE == 168_830
        frac = TABLE2_N_SURFACE / (TABLE2_N_VOLUME + TABLE2_N_SURFACE)
        assert frac == pytest.approx(0.0747, abs=1e-3)
