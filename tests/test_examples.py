"""Smoke tests: every example script runs end to end (reduced sizes)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart(tmp_path):
    out = _run("quickstart.py", "2000")
    assert "multi_solve" in out
    assert "MUMPS/HMAT" in out
    assert "rel error" in out


def test_memory_planner():
    out = _run("memory_planner.py", "128")
    assert "N_max" in out
    assert "multi_solve_compressed" in out


@pytest.mark.slow
def test_tradeoff_study():
    out = _run("tradeoff_study.py", "2500", "2000")
    assert "Figure 12" in out or "n_S" in out
    assert "factorizations" in out


def test_extensions_tour():
    out = _run("extensions_tour.py", "2500")
    assert "randomized compressed assembly" in out
    assert "out-of-core dense S" in out
    assert "Factor storage saved" in out


def test_load_case_sweep():
    out = _run("load_case_sweep.py", "2500", "3")
    assert "factorize once + 3 solves" in out
    assert "mean |surface response|" in out
