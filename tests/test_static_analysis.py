"""Tests for the repo-specific invariant checker suite (tools/analysis).

Three directions:

* the CFG/dataflow engine itself (graph shape, exception edges,
  ``finally`` duplication, fixpoint convergence);
* every fixture in ``tests/analysis_fixtures`` must produce its
  documented findings (the checkers actually detect what they claim);
* the real codebase must be clean (the gate `python -m tools.analysis
  src benchmarks` exits 0) — this is the regression test that keeps the
  CI job green and meaningful.
"""

from __future__ import annotations

import ast
import json
import threading
from pathlib import Path

import pytest

from tools.analysis import ALL_CHECKERS
from tools.analysis.engine import build_cfg, iter_scopes
from tools.analysis.runner import main as runner_main
from tools.analysis.runner import run_checkers
from tools.analysis.watchdog import LockOrderWatchdog, TrackerBalanceRecorder

FIXTURES = Path(__file__).parent / "analysis_fixtures"
REPO_ROOT = Path(__file__).parent.parent


def codes(findings):
    return {f.code for f in findings}


def codes_by_line(findings):
    return {(f.code, f.line) for f in findings}


def function_cfg(src: str):
    scopes = list(iter_scopes(ast.parse(src)))
    assert len(scopes) == 2  # module + the one function
    return scopes[1].cfg()


# -- the engine ----------------------------------------------------------------
class TestCfgConstruction:
    def test_branch_shape(self):
        cfg = function_cfg(
            "def f(flag):\n"
            "    if flag:\n"
            "        x = 1\n"
            "    else:\n"
            "        x = 2\n"
            "    return x\n"
        )
        kinds = [n.kind for n in cfg.nodes]
        assert kinds.count("branch") == 1
        assert kinds.count("join") == 1
        assumes = [n for n in cfg.nodes if n.kind == "assume"]
        assert sorted(n.meta for n in assumes) == ["else", "then"]

    def test_exception_edges_only_from_raising_statements(self):
        cfg = function_cfg(
            "def f(kernel):\n"
            "    x = 1\n"
            "    y = kernel()\n"
            "    return y\n"
        )
        by_line = {n.line: n for n in cfg.nodes if n.kind == "stmt"}
        assert by_line[2].esuccs == []  # plain assignment cannot raise
        assert by_line[3].esuccs != []  # the call can

    def test_finally_is_duplicated_per_continuation(self):
        cfg = function_cfg(
            "def f(tracker, kernel):\n"
            "    alloc = tracker.acquire(1)\n"
            "    try:\n"
            "        return kernel()\n"
            "    finally:\n"
            "        alloc.free()\n"
        )
        # the free() runs on the return unwind AND the exception unwind:
        # the suite is inlined once per continuation
        frees = [n for n in cfg.nodes if n.kind == "stmt" and n.line == 6]
        assert len(frees) >= 2

    def test_with_produces_enter_and_exit_nodes(self):
        cfg = function_cfg(
            "def f(self):\n"
            "    with self._lock:\n"
            "        self.x = 1\n"
        )
        kinds = [n.kind for n in cfg.nodes]
        assert "with_enter" in kinds and "with_exit" in kinds


class TestFixpoint:
    def test_loops_converge(self):
        # reallocation inside a loop reaches a fixpoint and stays clean
        src = (
            "def f(tracker, items):\n"
            "    total = 0\n"
            "    for it in items:\n"
            "        a = tracker.acquire(it)\n"
            "        total += it\n"
            "        a.free()\n"
            "    return total\n"
        )
        tmp = FIXTURES / "_tmp_loop.py"
        try:
            tmp.write_text(src)
            assert run_checkers([str(tmp)],
                                only=["resource-discipline"]) == []
        finally:
            tmp.unlink()

    def test_loop_carried_leak_is_found(self):
        src = (
            "def f(tracker, items):\n"
            "    for it in items:\n"
            "        a = tracker.acquire(it)\n"  # freed on no path
            "    return None\n"
        )
        tmp = FIXTURES / "_tmp_leak.py"
        try:
            tmp.write_text(src)
            found = run_checkers([str(tmp)], only=["resource-discipline"])
        finally:
            tmp.unlink()
        assert "RES002" in codes(found)


# -- fixture detection ---------------------------------------------------------
class TestResourceChecker:
    def test_fixture_findings(self):
        found = run_checkers([str(FIXTURES / "resource_leaks.py")],
                             only=["resource-discipline"])
        assert {"RES001", "RES002", "RES003"} <= codes(found)
        # the leak sites are the allocation lines
        lines = {f.line for f in found if f.code == "RES002"}
        assert len(lines) == 2
        # the clean baseline function contributes nothing
        assert all("clean_baseline" not in f.message for f in found)

    def test_double_free_is_at_second_free(self):
        found = run_checkers([str(FIXTURES / "resource_leaks.py")],
                             only=["resource-discipline"])
        res3 = [f for f in found if f.code == "RES003"]
        assert len(res3) == 1


class TestExceptionPathLeaks:
    """The regression fixture for leaks only the dataflow engine can see."""

    def test_straight_line_free_still_leaks_on_exception(self):
        found = run_checkers([str(FIXTURES / "exception_leak.py")],
                             only=["resource-discipline"])
        assert codes(found) == {"RES008"}
        text = (FIXTURES / "exception_leak.py").read_text().splitlines()
        expected = {i + 1 for i, l in enumerate(text) if "# RES008" in l}
        assert {f.line for f in found} == expected

    def test_cleanup_idioms_are_clean(self):
        found = run_checkers([str(FIXTURES / "exception_leak.py")],
                             only=["resource-discipline"])
        for clean in ("clean_except_cleanup", "clean_finally_cleanup",
                      "clean_guarded_cleanup"):
            assert all(clean not in f.message for f in found)


class TestArenaLifecycle:
    def test_fixture_findings(self):
        found = run_checkers([str(FIXTURES / "arena_misuse.py")],
                             only=["resource-discipline"])
        # RES008: ensure()/reset() can raise while the arena is live —
        # visible only to the flow-sensitive engine
        assert {"RES002", "RES003", "RES007", "RES008"} == codes(found)

    def test_use_after_free_sites(self):
        found = run_checkers([str(FIXTURES / "arena_misuse.py")],
                             only=["resource-discipline"])
        uaf = [f for f in found if f.code == "RES007"]
        assert len(uaf) == 2
        assert any("frame()" in f.message for f in uaf)
        assert any("reset()" in f.message for f in uaf)

    def test_leak_is_at_constructor(self):
        found = run_checkers([str(FIXTURES / "arena_misuse.py")],
                             only=["resource-discipline"])
        text = (FIXTURES / "arena_misuse.py").read_text().splitlines()
        ctor_line = next(i + 1 for i, l in enumerate(text)
                         if "RES002 (never freed)" in l)
        assert any(f.code == "RES002" and f.line == ctor_line
                   for f in found)

    def test_clean_owned_arena_contributes_nothing(self):
        found = run_checkers([str(FIXTURES / "arena_misuse.py")],
                             only=["resource-discipline"])
        assert all("clean_owned_arena" not in f.message for f in found)


class TestLockChecker:
    def test_fixture_findings(self):
        found = run_checkers([str(FIXTURES / "unlocked_access.py")],
                             only=["lock-discipline"])
        assert {"LOCK001", "LOCK002", "LOCK003"} == codes(found)

    def test_locked_method_is_clean(self):
        found = run_checkers([str(FIXTURES / "unlocked_access.py")],
                             only=["lock-discipline"])
        assert all("bump_locked" not in f.message for f in found)


class TestSchurChecker:
    def test_fixture_findings(self):
        found = run_checkers([str(FIXTURES / "densify_schur.py")],
                             only=["dense-schur"])
        assert {"SCHUR001", "SCHUR002", "SCHUR003", "SCHUR004",
                "WAIVE000"} == codes(found)

    def test_waiver_with_reason_suppresses(self):
        found = run_checkers([str(FIXTURES / "densify_schur.py")],
                             only=["dense-schur"])
        text = (FIXTURES / "densify_schur.py").read_text().splitlines()
        waived_line = next(
            i + 1 for i, l in enumerate(text)
            if "fixture demonstrating a justified waiver" in l
        )
        # the waived to_dense() on the following line produced no finding
        assert all(f.line != waived_line + 1 for f in found)

    def test_empty_waiver_is_itself_flagged(self):
        found = run_checkers([str(FIXTURES / "densify_schur.py")],
                             only=["dense-schur"])
        empties = [f for f in found if f.code == "WAIVE000"]
        assert len(empties) == 1


class TestAxpyChecker:
    def test_fixture_findings(self):
        found = run_checkers([str(FIXTURES / "axpy_misuse.py")],
                             only=["axpy-discipline"])
        assert {"AXPY001", "AXPY002", "AXPY003"} == codes(found)

    def test_dropped_accumulator_is_at_constructor(self):
        found = run_checkers([str(FIXTURES / "axpy_misuse.py")],
                             only=["axpy-discipline"])
        text = (FIXTURES / "axpy_misuse.py").read_text().splitlines()
        ctor_line = next(i + 1 for i, l in enumerate(text)
                         if "AXPY001 (never flushed" in l)
        assert any(f.code == "AXPY001" and f.line == ctor_line
                   for f in found)

    def test_clean_lifecycles_contribute_nothing(self):
        found = run_checkers([str(FIXTURES / "axpy_misuse.py")],
                             only=["axpy-discipline"])
        for clean in ("flushed_accumulator", "handed_off_accumulator",
                      "clean_staged_lifecycle", "'pool"):
            assert all(clean not in f.message for f in found)

    def test_late_flush_still_flags_factorize(self):
        # factorize_before_flush flushes *after* factorize: AXPY003 fires
        # and the late flush does not double as an AXPY002 excuse
        found = run_checkers([str(FIXTURES / "axpy_misuse.py")],
                             only=["axpy-discipline"])
        assert sum(1 for f in found if f.code == "AXPY003") == 1
        assert all("other" not in f.message for f in found
                   if f.code == "AXPY002")


class TestDtypeChecker:
    def test_fixture_findings(self):
        found = run_checkers(
            [str(FIXTURES / "repro" / "core" / "dtype_drift.py")],
            only=["dtype-safety"])
        assert {"DT001", "DT002"} == codes(found)
        assert sum(1 for f in found if f.code == "DT001") == 2

    def test_kernel_path_gate(self, tmp_path):
        # same content outside a kernel path: the dtype gate does not apply
        src = (FIXTURES / "repro" / "core" / "dtype_drift.py").read_text()
        other = tmp_path / "not_kernel.py"
        other.write_text(src)
        assert run_checkers([str(other)], only=["dtype-safety"]) == []


class TestPickleChecker:
    def test_fixture_findings(self):
        found = run_checkers([str(FIXTURES / "pkl_misuse.py")],
                             only=["pickle-safety"])
        assert {"PKL001", "PKL002", "PKL003"} == codes(found)
        assert sum(1 for f in found if f.code == "PKL001") == 4

    def test_module_level_references_are_exempt(self):
        # good_kernel reads make_kernel/np-style importables freely; the
        # clean submit of a module-level function produces nothing
        found = run_checkers([str(FIXTURES / "pkl_misuse.py")],
                             only=["pickle-safety"])
        assert all("good_kernel" not in f.message for f in found)


class TestBlockingChecker:
    def test_fixture_findings(self):
        found = run_checkers(
            [str(FIXTURES / "blocking_under_lock_misuse.py")],
            only=["blocking-under-lock"])
        assert {"BLK001", "BLK002"} == codes(found)
        assert sum(1 for f in found if f.code == "BLK001") == 3

    def test_flow_sensitivity(self):
        found = run_checkers(
            [str(FIXTURES / "blocking_under_lock_misuse.py")],
            only=["blocking-under-lock"])
        # waiting on the sole held condition, submitting after release
        # and non-blocking probes are all clean
        for clean in ("sole_cond_wait", "submit_after_release",
                      "nonblocking_probe", "slab_pop_under_lock"):
            assert all(clean not in f.message for f in found)

    def test_async_fixture_findings(self):
        found = run_checkers(
            [str(FIXTURES / "repro" / "serving"
                 / "async_blocking_misuse.py")],
            only=["blocking-under-lock"])
        assert codes(found) == {"BLK003"}
        assert len(found) == 5
        for bad in ("fact.solve", "cache.get_or_build", "future.result",
                    "tracker.acquire", "_done_event.wait"):
            assert any(bad in f.message for f in found)

    def test_async_clean_shapes_and_waiver(self):
        found = run_checkers(
            [str(FIXTURES / "repro" / "serving"
                 / "async_blocking_misuse.py")],
            only=["blocking-under-lock"])
        # executor thunks, awaited asyncio primitives, non-blocking
        # probes, sync methods and waived lines are all clean
        for clean in ("solve_via_executor", "awaited_asyncio_primitives",
                      "nonblocking_probe", "waived_solve",
                      "sync_method_is_out_of_scope"):
            assert all(clean not in f.message for f in found)

    def test_async_rule_is_path_gated(self, tmp_path):
        # same content outside a repro/serving/ path: BLK003 is silent
        src = (FIXTURES / "repro" / "serving"
               / "async_blocking_misuse.py").read_text()
        other = tmp_path / "not_serving.py"
        other.write_text(src)
        found = run_checkers([str(other)], only=["blocking-under-lock"])
        assert found == []


class TestSlabChecker:
    def test_fixture_findings(self):
        found = run_checkers([str(FIXTURES / "slab_misuse.py")],
                             only=["slab-lifecycle"])
        assert {"SLB001", "SLB002", "SLB003"} == codes(found)
        assert sum(1 for f in found if f.code == "SLB001") == 2

    def test_clean_lifecycles_contribute_nothing(self):
        found = run_checkers([str(FIXTURES / "slab_misuse.py")],
                             only=["slab-lifecycle"])
        for clean in ("clean_handoff", "clean_exception_path",
                      "clean_raw_segment"):
            assert all(clean not in f.message for f in found)


class TestDeterminismChecker:
    def test_fixture_findings(self):
        found = run_checkers([str(FIXTURES / "determinism_misuse.py")],
                             only=["determinism"])
        assert {"DET001", "DET002", "DET003"} == codes(found)
        assert sum(1 for f in found if f.code == "DET002") == 3

    def test_clean_paths_contribute_nothing(self):
        found = run_checkers([str(FIXTURES / "determinism_misuse.py")],
                             only=["determinism"])
        text = (FIXTURES / "determinism_misuse.py").read_text().splitlines()
        clean_start = next(i + 1 for i, l in enumerate(text)
                           if "def clean_paths" in l)
        assert all(f.line < clean_start for f in found)

    def test_rng_construction_fixture(self):
        found = run_checkers(
            [str(FIXTURES / "repro" / "sparse" / "sampling_misuse.py")],
            only=["determinism"])
        assert {"DET002", "DET004"} == codes(found)
        # np.random.Generator(...) and bare RandomState(...); the waived
        # interop shim stays silent
        assert sum(1 for f in found if f.code == "DET004") == 2

    def test_rng_rule_is_path_gated(self, tmp_path):
        # same content outside the randomized-kernel paths: DET004 is
        # silent but the unseeded default_rng() (DET002) applies anywhere
        src = (FIXTURES / "repro" / "sparse"
               / "sampling_misuse.py").read_text()
        other = tmp_path / "not_sparse.py"
        other.write_text(src)
        found = run_checkers([str(other)], only=["determinism"])
        assert codes(found) == {"DET002"}


# -- runner robustness ---------------------------------------------------------
class TestRunnerRobustness:
    def test_syntax_error_is_a_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        found = run_checkers([str(bad)])
        assert len(found) == 1
        assert found[0].code == "E000"
        assert "broken.py" in found[0].path

    def test_undecodable_file_is_a_finding(self, tmp_path):
        bad = tmp_path / "binary.py"
        bad.write_bytes(b"\xff\xfe\x00garbage")
        found = run_checkers([str(bad)])
        assert [f.code for f in found] == ["E000"]

    def test_jobs_match_serial(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        args = [str(FIXTURES), "--quiet", "--no-cache"]
        assert runner_main(args) == 1
        serial = capsys.readouterr().out
        assert runner_main(args + ["--jobs", "2"]) == 1
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_cache_round_trip(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        args = [str(FIXTURES / "resource_leaks.py"), "--quiet"]
        assert runner_main(args) == 1
        first = capsys.readouterr().out
        assert (tmp_path / ".analysis_cache.json").exists()
        assert runner_main(args) == 1  # second run served from cache
        assert capsys.readouterr().out == first

    def test_sarif_output(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "out.sarif"
        runner_main([str(FIXTURES / "resource_leaks.py"), "--quiet",
                     "--no-cache", "--sarif", str(out)])
        log = json.loads(out.read_text())
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analysis"
        assert run["results"]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {r["ruleId"] for r in run["results"]} <= rule_ids

    def test_baseline_suppresses_and_requires_justification(
            self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        fixture = str(FIXTURES / "exception_leak.py")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps([
            {"code": "RES008", "path": "exception_leak.py",
             "justification": "fixture: documented engine regression"},
        ]))
        sarif = tmp_path / "out.sarif"
        assert runner_main([fixture, "--quiet", "--no-cache",
                            "--baseline", str(baseline),
                            "--sarif", str(sarif)]) == 0
        log = json.loads(sarif.read_text())
        results = log["runs"][0]["results"]
        assert results and all(r.get("suppressions") for r in results)
        # an entry without a justification is a configuration error
        baseline.write_text(json.dumps([
            {"code": "RES008", "path": "exception_leak.py"},
        ]))
        assert runner_main([fixture, "--quiet", "--no-cache",
                            "--baseline", str(baseline)]) == 1


# -- real codebase is clean ----------------------------------------------------
class TestRepositoryClean:
    def test_src_and_benchmarks_pass(self):
        found = run_checkers([str(REPO_ROOT / "src"),
                              str(REPO_ROOT / "benchmarks")])
        assert found == [], "\n".join(f.render() for f in found)

    def test_cli_exit_codes(self, capsys):
        assert runner_main([str(REPO_ROOT / "src"), "--quiet",
                            "--no-cache"]) == 0
        assert runner_main([str(FIXTURES / "resource_leaks.py"),
                            "--quiet", "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "RES00" in out

    def test_checker_selection(self):
        found = run_checkers([str(FIXTURES / "unlocked_access.py")],
                             only=["dtype-safety"])
        assert found == []

    def test_all_checkers_registered(self):
        names = sorted(cls.name for cls in ALL_CHECKERS)
        assert names == ["axpy-discipline", "blocking-under-lock",
                         "dense-schur", "determinism", "dtype-safety",
                         "lock-discipline", "pickle-safety",
                         "resource-discipline", "slab-lifecycle"]


# -- runtime watchdog ----------------------------------------------------------
class TestLockOrderWatchdog:
    def test_ordered_acquisition_is_acyclic(self):
        with LockOrderWatchdog() as wd:
            outer = threading.Lock()
            inner = threading.Lock()
            for _ in range(3):
                with outer:
                    with inner:
                        pass
        assert wd.find_cycle() is None
        wd.assert_acyclic()

    def test_abba_inversion_is_detected(self):
        with LockOrderWatchdog() as wd:
            lock_a = threading.Lock()
            lock_b = threading.Lock()
            with lock_a:
                with lock_b:
                    pass

            def inverted():
                with lock_b:
                    with lock_a:
                        pass

            t = threading.Thread(target=inverted)
            t.start()
            t.join()
        assert wd.find_cycle() is not None
        with pytest.raises(AssertionError, match="lock-order cycle"):
            wd.assert_acyclic()

    def test_reentrant_rlock_adds_no_self_edge(self):
        with LockOrderWatchdog() as wd:
            rl = threading.RLock()
            with rl:
                with rl:
                    pass
        assert wd.edges == set()

    def test_condition_wrapping_still_works(self):
        with LockOrderWatchdog():
            cond = threading.Condition()
            hits = []

            def waiter():
                with cond:
                    cond.wait(timeout=5.0)
                    hits.append(1)

            t = threading.Thread(target=waiter)
            t.start()
            # give the waiter a moment to take the lock and block
            import time
            for _ in range(100):
                time.sleep(0.01)
                with cond:
                    cond.notify_all()
                if hits:
                    break
            t.join(timeout=5.0)
        assert hits == [1]

    def test_uninstall_restores_factories(self):
        orig_lock = threading.Lock
        wd = LockOrderWatchdog().install()
        assert threading.Lock is not orig_lock
        wd.uninstall()
        assert threading.Lock is orig_lock


class TestTrackerBalanceRecorder:
    def test_balanced_tracker_passes(self):
        from repro.memory.tracker import MemoryTracker

        rec = TrackerBalanceRecorder().install()
        try:
            tracker = MemoryTracker()
            alloc = tracker.allocate(100)
            alloc.free()
        finally:
            rec.uninstall()
        rec.verify()

    def test_unbalanced_tracker_fails(self):
        from repro.memory.tracker import MemoryTracker

        rec = TrackerBalanceRecorder().install()
        try:
            tracker = MemoryTracker()
            alloc = tracker.allocate(100)
        finally:
            rec.uninstall()
        with pytest.raises(AssertionError, match="still has 100 B live"):
            rec.verify()
        alloc.free()
