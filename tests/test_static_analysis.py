"""Tests for the repo-specific invariant checker suite (tools/analysis).

Two directions:

* every fixture in ``tests/analysis_fixtures`` must produce its
  documented findings (the checkers actually detect what they claim);
* the real codebase must be clean (the gate `python -m tools.analysis
  src benchmarks` exits 0) — this is the regression test that keeps the
  CI job green and meaningful.
"""

from __future__ import annotations

import threading
from pathlib import Path

import pytest

from tools.analysis import ALL_CHECKERS
from tools.analysis.runner import main as runner_main
from tools.analysis.runner import run_checkers
from tools.analysis.watchdog import LockOrderWatchdog, TrackerBalanceRecorder

FIXTURES = Path(__file__).parent / "analysis_fixtures"
REPO_ROOT = Path(__file__).parent.parent


def codes(findings):
    return {f.code for f in findings}


def codes_by_line(findings):
    return {(f.code, f.line) for f in findings}


# -- fixture detection ---------------------------------------------------------
class TestResourceChecker:
    def test_fixture_findings(self):
        found = run_checkers([str(FIXTURES / "resource_leaks.py")],
                             only=["resource-discipline"])
        assert {"RES001", "RES002", "RES003"} <= codes(found)
        # the leak sites are the allocation lines
        lines = {f.line for f in found if f.code == "RES002"}
        assert len(lines) == 2
        # the clean baseline function contributes nothing
        assert all("clean_baseline" not in f.message for f in found)

    def test_double_free_is_at_second_free(self):
        found = run_checkers([str(FIXTURES / "resource_leaks.py")],
                             only=["resource-discipline"])
        res3 = [f for f in found if f.code == "RES003"]
        assert len(res3) == 1


class TestArenaLifecycle:
    def test_fixture_findings(self):
        found = run_checkers([str(FIXTURES / "arena_misuse.py")],
                             only=["resource-discipline"])
        assert {"RES002", "RES003", "RES007"} == codes(found)

    def test_use_after_free_sites(self):
        found = run_checkers([str(FIXTURES / "arena_misuse.py")],
                             only=["resource-discipline"])
        uaf = [f for f in found if f.code == "RES007"]
        assert len(uaf) == 2
        assert any("frame()" in f.message for f in uaf)
        assert any("reset()" in f.message for f in uaf)

    def test_leak_is_at_constructor(self):
        found = run_checkers([str(FIXTURES / "arena_misuse.py")],
                             only=["resource-discipline"])
        text = (FIXTURES / "arena_misuse.py").read_text().splitlines()
        ctor_line = next(i + 1 for i, l in enumerate(text)
                         if "RES002 (never freed)" in l)
        assert any(f.code == "RES002" and f.line == ctor_line
                   for f in found)

    def test_clean_owned_arena_contributes_nothing(self):
        found = run_checkers([str(FIXTURES / "arena_misuse.py")],
                             only=["resource-discipline"])
        assert all("clean_owned_arena" not in f.message for f in found)


class TestLockChecker:
    def test_fixture_findings(self):
        found = run_checkers([str(FIXTURES / "unlocked_access.py")],
                             only=["lock-discipline"])
        assert {"LOCK001", "LOCK002", "LOCK003"} == codes(found)

    def test_locked_method_is_clean(self):
        found = run_checkers([str(FIXTURES / "unlocked_access.py")],
                             only=["lock-discipline"])
        assert all("bump_locked" not in f.message for f in found)


class TestSchurChecker:
    def test_fixture_findings(self):
        found = run_checkers([str(FIXTURES / "densify_schur.py")],
                             only=["dense-schur"])
        assert {"SCHUR001", "SCHUR002", "SCHUR003", "SCHUR004",
                "WAIVE000"} == codes(found)

    def test_waiver_with_reason_suppresses(self):
        found = run_checkers([str(FIXTURES / "densify_schur.py")],
                             only=["dense-schur"])
        text = (FIXTURES / "densify_schur.py").read_text().splitlines()
        waived_line = next(
            i + 1 for i, l in enumerate(text)
            if "fixture demonstrating a justified waiver" in l
        )
        # the waived to_dense() on the following line produced no finding
        assert all(f.line != waived_line + 1 for f in found)

    def test_empty_waiver_is_itself_flagged(self):
        found = run_checkers([str(FIXTURES / "densify_schur.py")],
                             only=["dense-schur"])
        empties = [f for f in found if f.code == "WAIVE000"]
        assert len(empties) == 1


class TestAxpyChecker:
    def test_fixture_findings(self):
        found = run_checkers([str(FIXTURES / "axpy_misuse.py")],
                             only=["axpy-discipline"])
        assert {"AXPY001", "AXPY002", "AXPY003"} == codes(found)

    def test_dropped_accumulator_is_at_constructor(self):
        found = run_checkers([str(FIXTURES / "axpy_misuse.py")],
                             only=["axpy-discipline"])
        text = (FIXTURES / "axpy_misuse.py").read_text().splitlines()
        ctor_line = next(i + 1 for i, l in enumerate(text)
                         if "AXPY001 (never flushed" in l)
        assert any(f.code == "AXPY001" and f.line == ctor_line
                   for f in found)

    def test_clean_lifecycles_contribute_nothing(self):
        found = run_checkers([str(FIXTURES / "axpy_misuse.py")],
                             only=["axpy-discipline"])
        for clean in ("flushed_accumulator", "handed_off_accumulator",
                      "clean_staged_lifecycle", "'pool"):
            assert all(clean not in f.message for f in found)

    def test_late_flush_still_flags_factorize(self):
        # factorize_before_flush flushes *after* factorize: AXPY003 fires
        # and the late flush does not double as an AXPY002 excuse
        found = run_checkers([str(FIXTURES / "axpy_misuse.py")],
                             only=["axpy-discipline"])
        assert sum(1 for f in found if f.code == "AXPY003") == 1
        assert all("other" not in f.message for f in found
                   if f.code == "AXPY002")


class TestDtypeChecker:
    def test_fixture_findings(self):
        found = run_checkers(
            [str(FIXTURES / "repro" / "core" / "dtype_drift.py")],
            only=["dtype-safety"])
        assert {"DT001", "DT002"} == codes(found)
        assert sum(1 for f in found if f.code == "DT001") == 2

    def test_kernel_path_gate(self, tmp_path):
        # same content outside a kernel path: the dtype gate does not apply
        src = (FIXTURES / "repro" / "core" / "dtype_drift.py").read_text()
        other = tmp_path / "not_kernel.py"
        other.write_text(src)
        assert run_checkers([str(other)], only=["dtype-safety"]) == []


# -- real codebase is clean ----------------------------------------------------
class TestRepositoryClean:
    def test_src_and_benchmarks_pass(self):
        found = run_checkers([str(REPO_ROOT / "src"),
                              str(REPO_ROOT / "benchmarks")])
        assert found == [], "\n".join(f.render() for f in found)

    def test_cli_exit_codes(self, capsys):
        assert runner_main([str(REPO_ROOT / "src"), "--quiet"]) == 0
        assert runner_main([str(FIXTURES / "resource_leaks.py"),
                            "--quiet"]) == 1
        out = capsys.readouterr().out
        assert "RES00" in out

    def test_checker_selection(self):
        found = run_checkers([str(FIXTURES / "unlocked_access.py")],
                             only=["dtype-safety"])
        assert found == []

    def test_all_checkers_registered(self):
        names = sorted(cls.name for cls in ALL_CHECKERS)
        assert names == ["axpy-discipline", "dense-schur", "dtype-safety",
                         "lock-discipline", "resource-discipline"]


# -- runtime watchdog ----------------------------------------------------------
class TestLockOrderWatchdog:
    def test_ordered_acquisition_is_acyclic(self):
        with LockOrderWatchdog() as wd:
            outer = threading.Lock()
            inner = threading.Lock()
            for _ in range(3):
                with outer:
                    with inner:
                        pass
        assert wd.find_cycle() is None
        wd.assert_acyclic()

    def test_abba_inversion_is_detected(self):
        with LockOrderWatchdog() as wd:
            lock_a = threading.Lock()
            lock_b = threading.Lock()
            with lock_a:
                with lock_b:
                    pass

            def inverted():
                with lock_b:
                    with lock_a:
                        pass

            t = threading.Thread(target=inverted)
            t.start()
            t.join()
        assert wd.find_cycle() is not None
        with pytest.raises(AssertionError, match="lock-order cycle"):
            wd.assert_acyclic()

    def test_reentrant_rlock_adds_no_self_edge(self):
        with LockOrderWatchdog() as wd:
            rl = threading.RLock()
            with rl:
                with rl:
                    pass
        assert wd.edges == set()

    def test_condition_wrapping_still_works(self):
        with LockOrderWatchdog():
            cond = threading.Condition()
            hits = []

            def waiter():
                with cond:
                    cond.wait(timeout=5.0)
                    hits.append(1)

            t = threading.Thread(target=waiter)
            t.start()
            # give the waiter a moment to take the lock and block
            import time
            for _ in range(100):
                time.sleep(0.01)
                with cond:
                    cond.notify_all()
                if hits:
                    break
            t.join(timeout=5.0)
        assert hits == [1]

    def test_uninstall_restores_factories(self):
        orig_lock = threading.Lock
        wd = LockOrderWatchdog().install()
        assert threading.Lock is not orig_lock
        wd.uninstall()
        assert threading.Lock is orig_lock


class TestTrackerBalanceRecorder:
    def test_balanced_tracker_passes(self):
        from repro.memory.tracker import MemoryTracker

        rec = TrackerBalanceRecorder().install()
        try:
            tracker = MemoryTracker()
            alloc = tracker.allocate(100)
            alloc.free()
        finally:
            rec.uninstall()
        rec.verify()

    def test_unbalanced_tracker_fails(self):
        from repro.memory.tracker import MemoryTracker

        rec = TrackerBalanceRecorder().install()
        try:
            tracker = MemoryTracker()
            alloc = tracker.allocate(100)
        finally:
            rec.uninstall()
        with pytest.raises(AssertionError, match="still has 100 B live"):
            rec.verify()
        alloc.free()
