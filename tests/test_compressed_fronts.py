"""Compressed-front pipeline: FCSU panels and sampled Schur borders.

Covers the low-rank frontal pipeline end to end:

* FCSU (compress-before-update) panels in the multifrontal kernels keep
  LDLᵀ/LU solves — including ``solve_transpose`` — accurate, and fall
  back *bit-identically* to the historical FSCU path when the panel
  threshold never fires;
* the randomized sampled Schur border feeding the HODLR container stays
  within the solver tolerance, is byte-identical for any worker count on
  either runtime backend, and degrades bitwise to the dense-border path
  when ``front_compress`` is off or the block threshold is out of reach;
* the new counters surface (``fcsu_compressed_updates`` in the sparse
  statistics, ``n_sampled_borders`` in the run parameters).

Runs under the lock-order watchdog and tracker-balance recorder (see
``conftest.py``), so every parallel case doubles as a deadlock and leak
check.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SolverConfig
from repro.core.multi_factorization import (
    assemble_multi_factorization,
    make_multi_factorization_context,
)
from repro.core.schur_tools import finalize_solution
from repro.sparse import BLRConfig, SparseSolver

# front_compress_min=64 puts both halves of the pipe surface (256 each
# at n_b=2) above the sampling threshold and lets FCSU fire on the
# medium fronts of the interior.
FRONT = SolverConfig(dense_backend="hmat", n_c=64, n_s_block=192, n_b=2,
                     front_compress=True, front_compress_min=64)
DENSE = FRONT.with_(front_compress=False)


def _run(problem, config):
    """One multi_factorization run; densified S for bitwise comparison."""
    ctx = make_multi_factorization_context(problem, config)
    pieces = assemble_multi_factorization(ctx)
    container = pieces[1]
    s = container.s
    s_dense = s.copy() if isinstance(s, np.ndarray) else s.to_dense()
    solution = finalize_solution(ctx, *pieces)
    ctx.tracker.assert_all_freed()
    return s_dense, solution, ctx


# ---------------------------------------------------------------------------
# FCSU at the multifrontal level
# ---------------------------------------------------------------------------

def _fcsu_blr(**overrides):
    kw = dict(tol=1e-4, min_panel=16, compress_before_update=True,
              fcsu_min_panel=16)
    kw.update(overrides)
    return BLRConfig(**kw)


class TestFcsuPanels:
    def test_ldlt_accuracy_and_counter(self, pipe_small, rng):
        a = pipe_small.a_vv.tocsr()
        f = SparseSolver(blr=_fcsu_blr()).factorize(
            a, coords=pipe_small.coords_v, symmetric_values=True)
        assert f.statistics()["fcsu_compressed_updates"] > 0
        b = rng.standard_normal(a.shape[0])
        x = f.solve(b)
        res = np.linalg.norm(a @ x - b) / np.linalg.norm(b)
        assert res < 1e-6
        f.free()

    def test_lu_solve_and_solve_transpose(self, aircraft_small, rng):
        a = aircraft_small.a_vv.tocsr()
        f = SparseSolver(blr=_fcsu_blr(fcsu_min_panel=32)).factorize(
            a, coords=aircraft_small.coords_v, symmetric_values=False)
        assert f.statistics()["fcsu_compressed_updates"] > 0
        n = a.shape[0]
        b = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        x = f.solve(b)
        assert np.linalg.norm(a @ x - b) / np.linalg.norm(b) < 1e-6
        # the transpose solve runs through the same compressed panels
        y = f.solve_transpose(b)
        assert np.linalg.norm(a.T @ y - b) / np.linalg.norm(b) < 1e-6
        f.free()

    def test_unreachable_threshold_is_bit_identical_to_fscu(
            self, pipe_small, rng):
        """FCSU with a panel floor no front reaches must take the exact
        path everywhere — factors and solutions match FSCU to the byte."""
        a = pipe_small.a_vv.tocsr()
        b = rng.standard_normal(a.shape[0])
        f_off = SparseSolver(
            blr=_fcsu_blr(compress_before_update=False)
        ).factorize(a, coords=pipe_small.coords_v, symmetric_values=True)
        f_gated = SparseSolver(
            blr=_fcsu_blr(fcsu_min_panel=10 ** 6)
        ).factorize(a, coords=pipe_small.coords_v, symmetric_values=True)
        assert f_gated.statistics()["fcsu_compressed_updates"] == 0
        assert np.array_equal(f_off.solve(b), f_gated.solve(b))
        f_off.free()
        f_gated.free()


# ---------------------------------------------------------------------------
# sampled Schur borders, end to end
# ---------------------------------------------------------------------------

class TestSampledBorders:
    def test_accuracy_and_counters_match_dense_path(self, pipe_small):
        s_dense, sol_dense, _ = _run(pipe_small, DENSE)
        s_samp, sol_samp, ctx = _run(pipe_small, FRONT)
        assert ctx.n_sampled_borders > 0
        params = sol_samp.stats.params
        assert params["front_compress"] is True
        assert params["n_sampled_borders"] == ctx.n_sampled_borders
        n_fem = pipe_small.n_fem
        for sol in (sol_dense, sol_samp):
            err = pipe_small.relative_error(sol.x[:n_fem], sol.x[n_fem:])
            assert err < 1e-3
        # both compress the same operator to the same tolerance
        rel = (np.linalg.norm(s_samp - s_dense)
               / np.linalg.norm(s_dense))
        assert rel < 1e-3

    def test_out_of_reach_threshold_falls_back_bitwise(self, pipe_small):
        """Blocks below ``front_compress_min`` must take the *identical*
        dense-border path — flipping the flag on changes nothing."""
        s_dense, sol_dense, _ = _run(pipe_small, DENSE)
        s_gated, sol_gated, ctx = _run(
            pipe_small, FRONT.with_(front_compress_min=10 ** 6))
        assert ctx.n_sampled_borders == 0
        assert np.array_equal(s_dense, s_gated)
        assert np.array_equal(sol_dense.x, sol_gated.x)

    _baseline: dict = {}

    @pytest.mark.parametrize("backend,n_workers", [
        ("thread", 4), ("process", 1), ("process", 4),
    ])
    def test_byte_identity_across_backends_and_workers(
            self, pipe_small, backend, n_workers):
        """The sampled pipeline must preserve the ordered-commit
        guarantee: byte-identical S and solution for every worker count
        on either backend."""
        if not self._baseline:
            s, sol, _ = _run(pipe_small, FRONT.with_(
                n_workers=1, runtime_backend="thread"))
            self._baseline["s"] = s
            self._baseline["x"] = sol.x
        s, sol, ctx = _run(pipe_small, FRONT.with_(
            n_workers=n_workers, runtime_backend=backend))
        assert ctx.n_sampled_borders > 0
        assert np.array_equal(self._baseline["s"], s)
        assert np.array_equal(self._baseline["x"], sol.x)
