"""Tests for the shared utilities (timers, dtypes, validation, errors)."""

import time

import numpy as np
import pytest

from repro.utils import (
    ConfigurationError,
    PhaseTimer,
    Timer,
    as_2d_array,
    check_positive,
    check_same_length,
    check_square,
    is_complex_dtype,
    itemsize_of,
    promote_dtype,
    real_dtype_of,
)


class TestTimer:
    def test_context_manager_measures_time(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_elapsed_accumulates_across_starts(self):
        t = Timer()
        t.start(); t.stop()
        first = t.elapsed
        t.start(); t.stop()
        assert t.elapsed >= first


class TestPhaseTimer:
    def test_phases_accumulate(self):
        pt = PhaseTimer()
        with pt.phase("a"):
            pass
        with pt.phase("a"):
            pass
        with pt.phase("b"):
            pass
        assert set(pt.phases) == {"a", "b"}
        assert pt.get("a") >= 0.0
        assert pt.get("missing") == 0.0

    def test_add_manual_time(self):
        pt = PhaseTimer()
        pt.add("x", 1.5)
        pt.add("x", 0.5)
        assert pt.get("x") == pytest.approx(2.0)

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            PhaseTimer().add("x", -1.0)

    def test_total_sums_phases(self):
        pt = PhaseTimer()
        pt.add("a", 1.0)
        pt.add("b", 2.0)
        assert pt.total == pytest.approx(3.0)

    def test_merge_folds_other_timer(self):
        a = PhaseTimer()
        a.add("x", 1.0)
        b = PhaseTimer()
        b.add("x", 2.0)
        b.add("y", 1.0)
        a.merge(b)
        assert a.get("x") == pytest.approx(3.0)
        assert a.get("y") == pytest.approx(1.0)

    def test_phase_records_on_exception(self):
        pt = PhaseTimer()
        with pytest.raises(ValueError):
            with pt.phase("boom"):
                raise ValueError
        assert "boom" in pt.phases

    def test_concurrent_phases_accumulate_exactly(self):
        # the runtime shares no timer between workers, but a single timer
        # must still survive concurrent use (merge at finalize, nested
        # phases on the caller thread while workers report)
        import threading

        pt = PhaseTimer()
        n_threads, n_iters = 4, 200

        def hammer(name):
            for _ in range(n_iters):
                with pt.phase(name):
                    pass
                pt.add("manual", 0.001)

        threads = [
            threading.Thread(target=hammer, args=(f"p{i % 2}",))
            for i in range(n_threads)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        # add() under a lock: no lost read-modify-write updates
        assert pt.get("manual") == pytest.approx(
            n_threads * n_iters * 0.001
        )
        assert set(pt.phases) >= {"p0", "p1", "manual"}


class TestDtypes:
    def test_is_complex_dtype(self):
        assert is_complex_dtype(np.complex128)
        assert is_complex_dtype(np.complex64)
        assert not is_complex_dtype(np.float64)
        assert not is_complex_dtype(np.int32)

    def test_promote_prefers_widest(self):
        assert promote_dtype(np.float64, np.complex128) == np.complex128
        assert promote_dtype(np.float32, np.float64) == np.float64

    def test_promote_integers_to_float(self):
        assert promote_dtype(np.int64) == np.float64

    def test_real_dtype_of(self):
        assert real_dtype_of(np.complex128) == np.float64
        assert real_dtype_of(np.complex64) == np.float32
        assert real_dtype_of(np.float32) == np.float32

    def test_itemsize(self):
        assert itemsize_of(np.float64) == 8
        assert itemsize_of(np.complex128) == 16


class TestValidation:
    def test_as_2d_promotes_vector_to_column(self):
        out = as_2d_array(np.arange(3))
        assert out.shape == (3, 1)

    def test_as_2d_keeps_matrix(self):
        out = as_2d_array(np.zeros((2, 5)))
        assert out.shape == (2, 5)

    def test_as_2d_rejects_3d(self):
        with pytest.raises(ConfigurationError):
            as_2d_array(np.zeros((2, 2, 2)))

    def test_check_square(self):
        check_square(np.zeros((3, 3)))
        with pytest.raises(ConfigurationError):
            check_square(np.zeros((3, 4)))

    def test_check_same_length(self):
        check_same_length([1, 2], [3, 4])
        with pytest.raises(ConfigurationError):
            check_same_length([1], [1, 2])

    def test_check_positive(self):
        check_positive(1)
        with pytest.raises(ConfigurationError):
            check_positive(0)
        with pytest.raises(ConfigurationError):
            check_positive(-3)
