"""Property-based tests across the solver pipeline.

Hypothesis generates random problem shapes and random well-conditioned
systems; the invariants checked here are the ones every paper experiment
silently relies on: factor-solve correctness on arbitrary grids, Schur
identity on random couplings, and the algebraic equivalence of the four
coupling algorithms.
"""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SolverConfig, solve_coupled
from repro.fembem import generate_pipe_case
from repro.fembem.fem import assemble_fem_matrix
from repro.fembem.mesh import StructuredGrid
from repro.sparse import SparseSolver


@settings(max_examples=12, deadline=None)
@given(
    nx=st.integers(2, 9), ny=st.integers(2, 7), nz=st.integers(2, 6),
    leaf=st.integers(8, 64), amal=st.integers(0, 32),
    seed=st.integers(0, 100),
)
def test_property_multifrontal_solves_any_grid(nx, ny, nz, leaf, amal, seed):
    """Factor+solve is correct for any grid shape and tree parameters."""
    grid = StructuredGrid(nx, ny, nz)
    a = assemble_fem_matrix(grid, mode="real_spd")
    solver = SparseSolver(leaf_size=leaf, amalgamate=amal)
    f = solver.factorize(a, coords=grid.points(), symmetric_values=True)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(a.shape[0])
    x = f.solve(b)
    res = np.linalg.norm(a @ b * 0 + a @ x - b) / np.linalg.norm(b)
    assert res < 1e-9
    f.free()


@settings(max_examples=10, deadline=None)
@given(
    k=st.integers(1, 30), density=st.floats(0.01, 0.1),
    seed=st.integers(0, 100), unsym=st.booleans(),
)
def test_property_schur_identity(k, density, seed, unsym):
    """factorize_schur returns A22 − A21 A11⁻¹ A12 for random couplings."""
    grid = StructuredGrid(6, 5, 4)
    a = assemble_fem_matrix(grid, mode="real_spd")
    n = a.shape[0]
    c = sp.random(k, n, density=density, format="csr", random_state=seed)
    b = (sp.random(k, n, density=density, format="csr",
                   random_state=seed + 1).T if unsym else c.T)
    w = sp.bmat([[a, b], [c, None]], format="csr")
    f = SparseSolver().factorize_schur(
        w, np.arange(n, n + k), coords_interior=grid.points(),
        symmetric_values=not unsym,
    )
    # spsolve squeezes single-column right-hand sides; normalise shapes
    ref = -(c @ spla.spsolve(a.tocsc(), b.toarray()).reshape(n, k))
    np.testing.assert_allclose(f.schur, ref, atol=1e-9)
    f.free()


@settings(max_examples=6, deadline=None)
@given(
    n_total=st.integers(800, 2_200),
    seed=st.integers(0, 20),
)
def test_property_algorithms_equivalent(n_total, seed):
    """Baseline, advanced, multi-solve and multi-factorization compute the
    same solution for any generated system (uncompressed backends)."""
    problem = generate_pipe_case(n_total, seed=seed)
    config = SolverConfig(sparse_compression=False, n_c=64, n_b=2)
    reference = None
    for algorithm in ("baseline", "advanced", "multi_solve",
                      "multi_factorization"):
        sol = solve_coupled(problem, algorithm, config)
        assert sol.relative_error < 1e-8
        if reference is None:
            reference = sol.x
        else:
            np.testing.assert_allclose(sol.x, reference, atol=1e-7)


@settings(max_examples=8, deadline=None)
@given(
    n_c=st.integers(1, 512), n_b=st.integers(1, 12),
)
def test_property_block_sizes_never_change_answers(pipe_tiny, n_c, n_b):
    """Any block-size choice yields the same solution (only cost varies)."""
    config = SolverConfig(sparse_compression=False, n_c=n_c, n_b=n_b)
    ms = solve_coupled(pipe_tiny, "multi_solve", config)
    mf = solve_coupled(pipe_tiny, "multi_factorization", config)
    np.testing.assert_allclose(ms.x, mf.x, atol=1e-7)


@pytest.fixture(scope="module")
def pipe_tiny():
    return generate_pipe_case(900, seed=11)
