"""Tests for Rk (low-rank outer-product) blocks and SVD truncation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hmatrix.rk import RkMatrix, rk_sum, svd_truncate
from repro.utils.errors import ConfigurationError


def _low_rank(rng, m, n, r, dtype=np.float64):
    u = rng.standard_normal((m, r)).astype(dtype)
    v = rng.standard_normal((n, r)).astype(dtype)
    if np.issubdtype(dtype, np.complexfloating):
        u = u + 1j * rng.standard_normal((m, r))
        v = v + 1j * rng.standard_normal((n, r))
    return u @ v.T


class TestSvdTruncate:
    def test_exact_rank_recovered(self, rng):
        a = _low_rank(rng, 40, 30, 5)
        u, v = svd_truncate(a, tol=1e-10)
        assert u.shape[1] == 5
        np.testing.assert_allclose(u @ v.T, a, atol=1e-8)

    def test_error_bounded_by_tolerance(self, rng):
        a = rng.standard_normal((50, 50))
        tol = 1e-2
        u, v = svd_truncate(a, tol=tol)
        err = np.linalg.norm(a - u @ v.T, 2)
        sigma1 = np.linalg.norm(a, 2)
        assert err <= tol * sigma1 * 1.0001

    def test_max_rank_cap(self, rng):
        a = rng.standard_normal((30, 30))
        u, v = svd_truncate(a, tol=0.0, max_rank=7)
        assert u.shape[1] == 7

    def test_zero_matrix_gives_rank_zero(self):
        u, v = svd_truncate(np.zeros((10, 5)), tol=1e-3)
        assert u.shape == (10, 0)
        assert v.shape == (5, 0)

    def test_norm_ref_allows_dropping_relative_to_context(self, rng):
        a = 1e-8 * rng.standard_normal((20, 20))
        # relative to its own norm the block is full rank, relative to a
        # large context norm it rounds to nothing
        u, _ = svd_truncate(a, tol=1e-3, norm_ref=1.0)
        assert u.shape[1] == 0

    def test_empty_block(self):
        u, v = svd_truncate(np.zeros((0, 4)), tol=1e-3)
        assert u.shape == (0, 0)
        assert v.shape == (4, 0)

    def test_non_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            svd_truncate(np.zeros(5), tol=1e-3)


class TestRkMatrix:
    def test_construction_and_props(self, rng):
        rk = RkMatrix(rng.standard_normal((8, 3)), rng.standard_normal((6, 3)))
        assert rk.shape == (8, 6)
        assert rk.rank == 3
        assert rk.nbytes == (8 + 6) * 3 * 8

    def test_mismatched_factors_rejected(self):
        with pytest.raises(ConfigurationError):
            RkMatrix(np.zeros((5, 2)), np.zeros((4, 3)))

    def test_zeros_constructor(self):
        rk = RkMatrix.zeros(4, 7)
        assert rk.rank == 0
        np.testing.assert_array_equal(rk.to_dense(), np.zeros((4, 7)))

    def test_matvec_and_rmatvec(self, rng):
        a = _low_rank(rng, 20, 15, 4)
        rk = RkMatrix.from_dense(a, 1e-12)
        x = rng.standard_normal((15, 2))
        y = rng.standard_normal((20, 2))
        np.testing.assert_allclose(rk.matvec(x), a @ x, atol=1e-10)
        np.testing.assert_allclose(rk.rmatvec(y), a.T @ y, atol=1e-10)

    def test_scaled_and_transposed(self, rng):
        a = _low_rank(rng, 10, 12, 3)
        rk = RkMatrix.from_dense(a, 1e-12)
        np.testing.assert_allclose(rk.scaled(-2.0).to_dense(), -2 * a,
                                   atol=1e-10)
        np.testing.assert_allclose(rk.transposed().to_dense(), a.T,
                                   atol=1e-10)

    def test_truncate_reduces_inflated_rank(self, rng):
        a = _low_rank(rng, 30, 30, 4)
        u = np.hstack([RkMatrix.from_dense(a, 1e-12).u] * 3)
        v = np.hstack([RkMatrix.from_dense(a, 1e-12).v] * 3)
        fat = RkMatrix(u, v)  # rank 12 representation of 3x the block
        slim = fat.truncate(1e-10)
        assert slim.rank == 4
        np.testing.assert_allclose(slim.to_dense(), 3 * a, atol=1e-8)

    def test_truncate_thicker_than_block_falls_back(self, rng):
        rk = RkMatrix(rng.standard_normal((5, 9)), rng.standard_normal((4, 9)))
        out = rk.truncate(1e-12)
        assert out.rank <= 4
        np.testing.assert_allclose(out.to_dense(), rk.to_dense(), atol=1e-8)

    def test_add_with_recompression(self, rng):
        a = _low_rank(rng, 25, 20, 3)
        b = _low_rank(rng, 25, 20, 2)
        out = RkMatrix.from_dense(a, 1e-12).add(
            RkMatrix.from_dense(b, 1e-12), tol=1e-10
        )
        assert out.rank <= 5
        np.testing.assert_allclose(out.to_dense(), a + b, atol=1e-8)

    def test_add_shape_mismatch_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            RkMatrix.zeros(3, 3).add(RkMatrix.zeros(4, 3), tol=1e-3)

    def test_add_rank_zero_is_identity(self, rng):
        a = _low_rank(rng, 10, 10, 2)
        rk = RkMatrix.from_dense(a, 1e-12)
        out = rk.add(RkMatrix.zeros(10, 10), tol=1e-10)
        np.testing.assert_allclose(out.to_dense(), a, atol=1e-10)

    def test_complex_symmetric_uses_plain_transpose(self, rng):
        a = _low_rank(rng, 15, 15, 3, np.complex128)
        a = a + a.T  # complex symmetric
        rk = RkMatrix.from_dense(a, 1e-12)
        np.testing.assert_allclose(rk.to_dense(), a, atol=1e-8)

    def test_norm_estimate_upper_bounds(self, rng):
        a = _low_rank(rng, 12, 12, 3)
        rk = RkMatrix.from_dense(a, 1e-12)
        assert rk.norm_estimate() >= np.linalg.norm(a, "fro") * 0.999
        assert RkMatrix.zeros(3, 3).norm_estimate() == 0.0


class TestRkSum:
    def test_sum_of_several(self, rng):
        blocks = [_low_rank(rng, 18, 14, 2) for _ in range(4)]
        rks = [RkMatrix.from_dense(b, 1e-12) for b in blocks]
        out = rk_sum(rks, tol=1e-10)
        np.testing.assert_allclose(out.to_dense(), sum(blocks), atol=1e-7)

    def test_empty_sum_rejected(self):
        with pytest.raises(ConfigurationError):
            rk_sum([], tol=1e-3)

    def test_all_zero_blocks_rejected(self):
        with pytest.raises(ConfigurationError):
            rk_sum([RkMatrix.zeros(3, 3)], tol=1e-3)


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(1, 30), n=st.integers(1, 30), r=st.integers(1, 6),
    seed=st.integers(0, 500),
)
def test_property_from_dense_roundtrip(m, n, r, seed):
    """from_dense at tight tolerance reproduces any low-rank block."""
    rng = np.random.default_rng(seed)
    a = _low_rank(rng, m, n, min(r, m, n))
    rk = RkMatrix.from_dense(a, 1e-12)
    assert rk.rank <= min(r, m, n)
    np.testing.assert_allclose(rk.to_dense(), a, atol=1e-7 * max(1, np.abs(a).max()))
