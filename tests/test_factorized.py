"""Tests for the reusable CoupledFactorization (factor once, solve many)."""

import threading

import numpy as np
import pytest

from repro.core import CoupledFactorization, SolverConfig, solve_coupled
from repro.utils.errors import ConfigurationError, FactorizationFreed


@pytest.fixture(scope="module", params=["spido", "hmat", "spido_ooc"])
def fact(request, pipe_medium):
    f = CoupledFactorization(
        pipe_medium, "multi_solve",
        SolverConfig(dense_backend=request.param, n_c=96, n_s_block=256),
    )
    yield f
    f.free()


class TestSolve:
    def test_matches_one_shot_solve(self, pipe_medium, fact):
        x_v, x_s = fact.solve(pipe_medium.b_v, pipe_medium.b_s)
        assert pipe_medium.relative_error(x_v, x_s) < 1e-3

    def test_linearity_across_load_cases(self, pipe_medium, fact):
        x_v, x_s = fact.solve(pipe_medium.b_v, pipe_medium.b_s)
        y_v, y_s = fact.solve(-2 * pipe_medium.b_v, -2 * pipe_medium.b_s)
        np.testing.assert_allclose(y_v, -2 * x_v, atol=1e-8)
        np.testing.assert_allclose(y_s, -2 * x_s, atol=1e-8)

    def test_block_of_load_cases(self, pipe_medium, fact):
        b_v = np.stack([pipe_medium.b_v, 0.5 * pipe_medium.b_v], axis=1)
        b_s = np.stack([pipe_medium.b_s, 0.5 * pipe_medium.b_s], axis=1)
        x_v, x_s = fact.solve(b_v, b_s)
        assert x_v.shape == (pipe_medium.n_fem, 2)
        np.testing.assert_allclose(x_v[:, 1], 0.5 * x_v[:, 0], atol=1e-8)

    def test_per_call_refinement(self, pipe_medium):
        f = CoupledFactorization(
            pipe_medium, "multi_solve",
            SolverConfig(dense_backend="hmat", epsilon=1e-2),
        )
        plain_v, plain_s = f.solve(pipe_medium.b_v, pipe_medium.b_s)
        refined_v, refined_s = f.solve(pipe_medium.b_v, pipe_medium.b_s,
                                       refinement_steps=2)
        assert pipe_medium.relative_error(refined_v, refined_s) < (
            0.01 * pipe_medium.relative_error(plain_v, plain_s)
        )
        f.free()

    def test_solve_counter(self, pipe_medium, fact):
        before = fact.n_solves
        fact.solve(pipe_medium.b_v, pipe_medium.b_s)
        assert fact.n_solves == before + 1


class TestAlgorithms:
    @pytest.mark.parametrize("algorithm", [
        "baseline", "advanced", "multi_solve", "multi_factorization",
    ])
    def test_every_algorithm_builds(self, pipe_small, algorithm):
        with CoupledFactorization(pipe_small, algorithm,
                                  SolverConfig(n_c=64, n_b=2)) as f:
            x_v, x_s = f.solve(pipe_small.b_v, pipe_small.b_s)
            assert pipe_small.relative_error(x_v, x_s) < 1e-3

    def test_matches_solve_coupled(self, pipe_small):
        config = SolverConfig(n_c=64)
        one_shot = solve_coupled(pipe_small, "multi_solve", config)
        with CoupledFactorization(pipe_small, "multi_solve", config) as f:
            x_v, x_s = f.solve(pipe_small.b_v, pipe_small.b_s)
        np.testing.assert_allclose(np.concatenate([x_v, x_s]), one_shot.x,
                                   atol=1e-10)

    def test_complex_case(self, aircraft_small):
        with CoupledFactorization(
            aircraft_small, "multi_factorization",
            SolverConfig(n_b=2, epsilon=1e-4),
        ) as f:
            x_v, x_s = f.solve(aircraft_small.b_v, aircraft_small.b_s)
            assert aircraft_small.relative_error(x_v, x_s) < 1e-4


class TestLifecycleAndErrors:
    def test_unknown_algorithm_rejected(self, pipe_small):
        with pytest.raises(ConfigurationError):
            CoupledFactorization(pipe_small, "cg")

    def test_shape_mismatch_rejected(self, pipe_medium, fact):
        with pytest.raises(ConfigurationError):
            fact.solve(np.zeros(3), pipe_medium.b_s)
        with pytest.raises(ConfigurationError):
            fact.solve(pipe_medium.b_v, np.zeros(3))

    def test_solve_after_free_raises(self, pipe_small):
        f = CoupledFactorization(pipe_small, "multi_solve",
                                 SolverConfig(n_c=64))
        f.free()
        with pytest.raises(FactorizationFreed):
            f.solve(pipe_small.b_v, pipe_small.b_s)

    def test_free_releases_tracked_memory(self, pipe_small):
        f = CoupledFactorization(pipe_small, "multi_solve",
                                 SolverConfig(n_c=64))
        tracker = f._ctx.tracker
        assert tracker.in_use > 0
        f.free()
        tracker.assert_all_freed()

    def test_stats_snapshot(self, pipe_medium, fact):
        s = fact.stats
        assert s.n_total == pipe_medium.n_total
        assert s.peak_bytes > 0
        assert "sparse_factorization" in s.phases


class TestConcurrency:
    """The PR-8 serving contract: concurrent solve() + idempotent free().

    A solve racing an eviction-driven free() must either complete
    against live factors or raise FactorizationFreed — never read freed
    state or double-release tracker charges.  The module-level watchdog
    fixture verifies lock ordering and tracker balance around each test.
    """

    def test_free_is_idempotent(self, pipe_small):
        f = CoupledFactorization(pipe_small, "multi_solve",
                                 SolverConfig(n_c=64))
        tracker = f._ctx.tracker
        f.free()
        f.free()
        f.free()
        assert f.freed
        tracker.assert_all_freed()

    def test_solve_after_free_raises_typed(self, pipe_small):
        f = CoupledFactorization(pipe_small, "multi_solve",
                                 SolverConfig(n_c=64))
        f.free()
        with pytest.raises(FactorizationFreed):
            f.solve(pipe_small.b_v, pipe_small.b_s)

    def test_concurrent_solves_agree(self, pipe_small):
        f = CoupledFactorization(pipe_small, "multi_solve",
                                 SolverConfig(n_c=64))
        reference = f.solve(pipe_small.b_v, pipe_small.b_s)
        results = [None] * 8
        errors = []

        def worker(i):
            try:
                results[i] = f.solve(pipe_small.b_v, pipe_small.b_s)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for x_v, x_s in results:
            np.testing.assert_array_equal(x_v, reference[0])
            np.testing.assert_array_equal(x_s, reference[1])
        f.free()

    def test_free_defers_until_solves_drain(self, pipe_small):
        """free() during active solves: they complete, release is deferred."""
        f = CoupledFactorization(pipe_small, "multi_solve",
                                 SolverConfig(n_c=64))
        tracker = f._ctx.tracker
        started = threading.Barrier(4 + 1)
        results = []
        errors = []

        def worker():
            started.wait()
            try:
                results.append(f.solve(pipe_small.b_v, pipe_small.b_s))
            except FactorizationFreed:
                pass  # acceptable: free won the begin-solve race
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        started.wait()
        f.free()  # races the in-flight solves
        for t in threads:
            t.join()
        assert not errors
        assert f.freed
        for x_v, x_s in results:
            assert pipe_small.relative_error(x_v, x_s) < 1e-3
        # whatever mix of completed/refused solves occurred, the deferred
        # release ran exactly once and the balance is zero
        tracker.assert_all_freed()
        with pytest.raises(FactorizationFreed):
            f.solve(pipe_small.b_v, pipe_small.b_s)

    def test_solve_free_hammer(self, pipe_small):
        """Many rounds of solve threads racing a freeing thread."""
        for _ in range(5):
            f = CoupledFactorization(pipe_small, "multi_solve",
                                     SolverConfig(n_c=64))
            tracker = f._ctx.tracker
            go = threading.Barrier(3 + 1)
            errors = []

            def solver(fact=f, barrier=go):
                barrier.wait()
                for _ in range(3):
                    try:
                        fact.solve(pipe_small.b_v, pipe_small.b_s)
                    except FactorizationFreed:
                        return
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                        return

            threads = [threading.Thread(target=solver) for _ in range(3)]
            for t in threads:
                t.start()
            go.wait()
            f.free()
            for t in threads:
                t.join()
            assert not errors
            tracker.assert_all_freed()
