"""Shared fixtures for the test suite.

Problem generation dominates test time, so the coupled test problems are
session-scoped; tests must not mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fembem import generate_aircraft_case, generate_pipe_case


@pytest.fixture(scope="session")
def pipe_small():
    """A small real symmetric pipe case (fast; shared, do not mutate)."""
    return generate_pipe_case(1_600, seed=7)


@pytest.fixture(scope="session")
def pipe_medium():
    """A medium pipe case for integration tests (shared, do not mutate)."""
    return generate_pipe_case(3_000, seed=3)


@pytest.fixture(scope="session")
def aircraft_small():
    """A small complex non-symmetric industrial case (shared, do not mutate)."""
    # a larger surface share than the geometric default so the dense part
    # is big enough for compression effects to be observable in tests
    return generate_aircraft_case(1_800, seed=5, bem_fraction=0.25)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
