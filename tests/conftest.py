"""Shared fixtures for the test suite.

Problem generation dominates test time, so the coupled test problems are
session-scoped; tests must not mutate them.

The concurrency tests (``test_runtime.py``) additionally run under the
lock-order watchdog from :mod:`tools.analysis.watchdog`: every lock
acquisition is recorded and the test fails if the observed acquisition
graph contains a cycle (a potential ABBA deadlock), or if any
``MemoryTracker`` created during the test ends it unbalanced.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# make the repo-root ``tools`` package importable regardless of how pytest
# was launched (``python -m pytest`` adds the CWD, plain ``pytest`` does not)
_REPO_ROOT = Path(__file__).resolve().parent.parent
if (_REPO_ROOT / "tools").is_dir() and str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

from repro.fembem import generate_aircraft_case, generate_pipe_case

#: test modules whose lock usage the watchdog verifies end to end
_WATCHDOG_MODULES = {"test_runtime", "test_symbolic_cache",
                     "test_compressed_axpy", "test_process_backend",
                     "test_factorized", "test_serving_cache",
                     "test_serving", "test_compressed_fronts"}


@pytest.fixture(autouse=True)
def _concurrency_invariants(request):
    """Lock-order + tracker-balance verification around concurrency tests."""
    module = getattr(request, "module", None)
    if module is None or module.__name__ not in _WATCHDOG_MODULES:
        yield
        return
    from tools.analysis.watchdog import LockOrderWatchdog, TrackerBalanceRecorder

    watchdog = LockOrderWatchdog().install()
    recorder = TrackerBalanceRecorder().install()
    try:
        yield
    finally:
        recorder.uninstall()
        watchdog.uninstall()
    # a violation surfaces as a teardown error on the offending test
    watchdog.assert_acyclic()
    recorder.verify()


@pytest.fixture(scope="session")
def pipe_small():
    """A small real symmetric pipe case (fast; shared, do not mutate)."""
    return generate_pipe_case(1_600, seed=7)


@pytest.fixture(scope="session")
def pipe_medium():
    """A medium pipe case for integration tests (shared, do not mutate)."""
    return generate_pipe_case(3_000, seed=3)


@pytest.fixture(scope="session")
def aircraft_small():
    """A small complex non-symmetric industrial case (shared, do not mutate)."""
    # a larger surface share than the geometric default so the dense part
    # is big enough for compression effects to be observable in tests
    return generate_aircraft_case(1_800, seed=5, bem_fraction=0.25)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
