"""Tests for adaptive cross approximation."""

import numpy as np
import pytest

from repro.fembem.bem import helmholtz_kernel, laplace_kernel
from repro.fembem.mesh import box_surface_points
from repro.hmatrix.aca import aca, aca_dense
from repro.utils.errors import ConfigurationError


@pytest.fixture(scope="module")
def separated_clouds():
    """Two well-separated point clouds — an admissible block."""
    a = box_surface_points((2.0, 2.0, 2.0), 120, seed=1)
    b = box_surface_points((2.0, 2.0, 2.0), 100, seed=2,
                           origin=(8.0, 0.0, 0.0))
    return a, b


class TestAcaOnKernels:
    def test_laplace_admissible_block_compresses(self, separated_clouds):
        x, y = separated_clouds
        g = laplace_kernel(0.05)(x, y)
        rk = aca_dense(g, tol=1e-8)
        assert rk.rank < min(g.shape) // 3  # genuinely low rank
        err = np.abs(rk.to_dense() - g).max()
        assert err < 1e-6 * np.abs(g).max()

    def test_tolerance_controls_rank(self, separated_clouds):
        x, y = separated_clouds
        g = laplace_kernel(0.05)(x, y)
        loose = aca_dense(g, tol=1e-2).rank
        tight = aca_dense(g, tol=1e-9).rank
        assert loose < tight

    def test_helmholtz_complex_kernel(self, separated_clouds):
        x, y = separated_clouds
        g = helmholtz_kernel(1.0, 0.05)(x, y)
        rk = aca(
            lambda i: g[i], lambda j: g[:, j], g.shape, tol=1e-8,
            dtype=g.dtype,
        )
        err = np.abs(rk.to_dense() - g).max()
        assert err < 1e-6 * np.abs(g).max()

    def test_lazy_evaluation_only_touches_crosses(self, separated_clouds):
        x, y = separated_clouds
        g = laplace_kernel(0.05)(x, y)
        touched_rows = []
        touched_cols = []

        def row_fn(i):
            touched_rows.append(i)
            return g[i]

        def col_fn(j):
            touched_cols.append(j)
            return g[:, j]

        rk = aca(row_fn, col_fn, g.shape, tol=1e-6, dtype=g.dtype)
        # ACA's whole point: far fewer evaluations than the full block
        # (the verification probes add a handful of extra columns)
        assert len(touched_rows) <= rk.rank + 2
        assert len(touched_cols) <= 2 * rk.rank + 16
        assert len(touched_cols) < g.shape[1] // 2


class TestAcaEdgeCases:
    def test_zero_block(self):
        rk = aca_dense(np.zeros((10, 8)), tol=1e-6)
        assert rk.rank == 0

    def test_exact_low_rank_terminates_early(self, rng):
        a = np.outer(rng.standard_normal(20), rng.standard_normal(15))
        a += np.outer(rng.standard_normal(20), rng.standard_normal(15))
        rk = aca_dense(a, tol=1e-12)
        assert rk.rank <= 4  # small overshoot allowed, not min(m,n)
        np.testing.assert_allclose(rk.to_dense(), a, atol=1e-8)

    def test_max_rank_cap(self, rng):
        a = rng.standard_normal((30, 30))
        rk = aca_dense(a, tol=1e-15, max_rank=5)
        assert rk.rank <= 5

    def test_full_rank_block_recovered_exactly_at_cap(self, rng):
        a = rng.standard_normal((12, 12))
        rk = aca_dense(a, tol=1e-15)
        np.testing.assert_allclose(rk.to_dense(), a, atol=1e-7)

    def test_single_row_block(self, rng):
        a = rng.standard_normal((1, 10))
        rk = aca_dense(a, tol=1e-10)
        np.testing.assert_allclose(rk.to_dense(), a, atol=1e-10)

    def test_single_column_block(self, rng):
        a = rng.standard_normal((10, 1))
        rk = aca_dense(a, tol=1e-10)
        np.testing.assert_allclose(rk.to_dense(), a, atol=1e-10)

    def test_block_with_zero_rows(self, rng):
        a = np.zeros((10, 10))
        a[7] = rng.standard_normal(10)
        rk = aca_dense(a, tol=1e-10)
        np.testing.assert_allclose(rk.to_dense(), a, atol=1e-10)

    def test_empty_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            aca(lambda i: None, lambda j: None, (0, 5), tol=1e-3)

    def test_non_2d_dense_rejected(self):
        with pytest.raises(ConfigurationError):
            aca_dense(np.zeros(5), tol=1e-3)
