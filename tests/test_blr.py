"""Tests for BLR panel compression policy and panel operations."""

import numpy as np
import pytest

from repro.hmatrix.rk import RkMatrix
from repro.sparse.blr import (
    BLRConfig,
    compress_panel,
    panel_matmat,
    panel_nbytes,
    panel_rmatmat,
)
from repro.utils.errors import ConfigurationError


def _low_rank_panel(rng, m, n, r):
    return (rng.standard_normal((m, r)) @ rng.standard_normal((r, n)))


class TestConfigValidation:
    def test_defaults(self):
        cfg = BLRConfig()
        assert cfg.enabled and cfg.tol == 1e-3

    @pytest.mark.parametrize("kwargs", [
        {"tol": 0.0}, {"tol": -1e-3}, {"min_panel": 0},
        {"max_rank_fraction": 0.0}, {"max_rank_fraction": 1.5},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            BLRConfig(**kwargs)


class TestCompressPanel:
    def test_disabled_returns_input(self, rng):
        panel = rng.standard_normal((100, 100))
        assert compress_panel(panel, None) is panel
        assert compress_panel(panel, BLRConfig(enabled=False)) is panel

    def test_small_panel_stays_dense(self, rng):
        panel = rng.standard_normal((10, 10))
        out = compress_panel(panel, BLRConfig(min_panel=64))
        assert out is panel

    def test_low_rank_panel_compressed(self, rng):
        panel = _low_rank_panel(rng, 128, 96, 5)
        out = compress_panel(panel, BLRConfig(tol=1e-8, min_panel=32))
        assert isinstance(out, RkMatrix)
        assert out.rank <= 6
        np.testing.assert_allclose(out.to_dense(), panel, atol=1e-6)

    def test_full_rank_panel_stays_dense(self, rng):
        panel = rng.standard_normal((96, 96))
        out = compress_panel(panel, BLRConfig(tol=1e-12, min_panel=32))
        assert out is panel

    def test_compression_never_grows_storage(self, rng):
        """The byte break-even criterion: Rk is kept only when smaller."""
        for r in (2, 20, 60):
            panel = _low_rank_panel(rng, 80, 80, r)
            out = compress_panel(
                panel, BLRConfig(tol=1e-10, min_panel=16,
                                 max_rank_fraction=1.0)
            )
            assert panel_nbytes(out) <= panel.nbytes

    def test_rank_fraction_cap(self, rng):
        panel = _low_rank_panel(rng, 100, 100, 30)
        out = compress_panel(
            panel, BLRConfig(tol=1e-10, min_panel=16, max_rank_fraction=0.1)
        )
        assert isinstance(out, np.ndarray)  # 30 > 0.1*100: rejected


class TestPanelOps:
    def test_ops_consistent_dense_vs_rk(self, rng):
        panel = _low_rank_panel(rng, 60, 40, 4)
        rk = RkMatrix.from_dense(panel, 1e-12)
        x = rng.standard_normal((40, 3))
        y = rng.standard_normal((60, 2))
        np.testing.assert_allclose(panel_matmat(panel, x),
                                   panel_matmat(rk, x), atol=1e-8)
        np.testing.assert_allclose(panel_rmatmat(panel, y),
                                   panel_rmatmat(rk, y), atol=1e-8)

    def test_nbytes(self, rng):
        panel = rng.standard_normal((8, 4))
        assert panel_nbytes(panel) == 8 * 4 * 8
        rk = RkMatrix.from_dense(panel, 1e-12)
        assert panel_nbytes(rk) == rk.nbytes
