"""Tests for geometric cluster trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fembem.mesh import box_surface_points
from repro.hmatrix.cluster import build_cluster_tree
from repro.utils.errors import ConfigurationError


@pytest.fixture(scope="module")
def points():
    return box_surface_points((6.0, 2.0, 2.0), 400, seed=21)


class TestBuild:
    def test_perm_is_a_permutation(self, points):
        tree = build_cluster_tree(points, leaf_size=32)
        np.testing.assert_array_equal(np.sort(tree.perm),
                                      np.arange(len(points)))

    def test_inv_perm_inverts(self, points):
        tree = build_cluster_tree(points, leaf_size=32)
        np.testing.assert_array_equal(tree.perm[tree.inv_perm],
                                      np.arange(len(points)))

    def test_leaves_partition_range(self, points):
        tree = build_cluster_tree(points, leaf_size=32)
        leaves = list(tree.leaves())
        starts = [l.start for l in leaves]
        stops = [l.stop for l in leaves]
        assert starts[0] == 0
        assert stops[-1] == len(points)
        assert starts[1:] == stops[:-1]  # contiguous, left to right

    def test_leaf_size_respected(self, points):
        tree = build_cluster_tree(points, leaf_size=32)
        assert all(l.size <= 32 for l in tree.leaves())

    def test_children_split_parent_range(self, points):
        tree = build_cluster_tree(points, leaf_size=50)

        def check(node):
            if node.is_leaf:
                return
            c1, c2 = node.children
            assert c1.start == node.start
            assert c1.stop == c2.start
            assert c2.stop == node.stop
            check(c1)
            check(c2)

        check(tree.root)

    def test_bounding_boxes_contain_points(self, points):
        tree = build_cluster_tree(points, leaf_size=32)
        permuted = tree.permuted_points()

        def check(node):
            pts = permuted[node.start : node.stop]
            assert (pts >= node.bbox_min - 1e-12).all()
            assert (pts <= node.bbox_max + 1e-12).all()
            for c in node.children:
                check(c)

        check(tree.root)

    def test_depth_is_logarithmic(self, points):
        tree = build_cluster_tree(points, leaf_size=25)
        assert tree.depth() <= int(np.ceil(np.log2(len(points) / 25))) + 2

    def test_single_point(self):
        tree = build_cluster_tree(np.zeros((1, 3)), leaf_size=4)
        assert tree.root.is_leaf
        assert tree.n == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            build_cluster_tree(np.zeros((0, 3)))

    def test_bad_leaf_size_rejected(self, points):
        with pytest.raises(ConfigurationError):
            build_cluster_tree(points, leaf_size=0)

    def test_duplicate_points_handled(self):
        pts = np.zeros((100, 3))
        tree = build_cluster_tree(pts, leaf_size=16)
        # splitting identical coordinates must still terminate and cover
        np.testing.assert_array_equal(np.sort(tree.perm), np.arange(100))


class TestGeometry:
    def test_diameter(self):
        pts = np.array([[0.0, 0, 0], [3.0, 4.0, 0]])
        tree = build_cluster_tree(pts, leaf_size=4)
        assert tree.root.diameter() == pytest.approx(5.0)

    def test_distance_between_disjoint_boxes(self, points):
        tree = build_cluster_tree(points, leaf_size=64)
        if not tree.root.is_leaf:
            c1, c2 = tree.root.children
            assert c1.distance_to(c2) >= 0.0
            assert c1.distance_to(c1) == 0.0

    def test_node_count_consistency(self, points):
        tree = build_cluster_tree(points, leaf_size=32)
        leaves = sum(1 for _ in tree.leaves())
        assert tree.node_count() == 2 * leaves - 1  # full binary tree


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 300), leaf=st.integers(1, 64), seed=st.integers(0, 99))
def test_property_tree_always_valid(n, leaf, seed):
    rng = np.random.default_rng(seed)
    pts = rng.uniform(-1, 1, size=(n, 3))
    tree = build_cluster_tree(pts, leaf_size=leaf)
    np.testing.assert_array_equal(np.sort(tree.perm), np.arange(n))
    assert all(l.size <= leaf for l in tree.leaves())
